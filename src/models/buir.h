// BUIR (Lee et al., SIGIR 2021): bootstrapping user and item
// representations for one-class collaborative filtering.
//
// Two encoders share the LightGCN backbone: the *online* encoder is trained
// by gradient descent; the *target* encoder is a slow exponential moving
// average of the online one and receives no gradients. For a positive pair
// (u, i) the online prediction of u must match the target representation of
// i and vice versa — no negative sampling:
//
//   L = ‖norm(q(f_on(u))) − norm(f_tg(i))‖² + ‖norm(q(f_on(i))) − norm(f_tg(u))‖²
//     = (2 − 2·cos(q(f_on(u)), f_tg(i))) + (2 − 2·cos(q(f_on(i)), f_tg(u))).

#ifndef LAYERGCN_MODELS_BUIR_H_
#define LAYERGCN_MODELS_BUIR_H_

#include <memory>
#include <string>
#include <vector>

#include "autograd/ops.h"
#include "sparse/csr_matrix.h"
#include "train/adam.h"
#include "train/bpr_sampler.h"
#include "train/recommender.h"

namespace layergcn::models {

/// BUIR with a LightGCN backbone and a linear predictor head.
class Buir : public train::Recommender {
 public:
  std::string name() const override { return "BUIR"; }

  void Init(const data::Dataset& dataset, const train::TrainConfig& config,
            util::Rng* rng) override;
  void BeginEpoch(int epoch, util::Rng* rng) override;
  double TrainEpoch(util::Rng* rng,
                    std::vector<double>* batch_losses) override;
  void PrepareEval() override;
  tensor::Matrix ScoreUsers(const std::vector<int32_t>& users) const override;
  std::vector<train::Parameter*> Params() override;

  int64_t OptimizerSteps() const override { return adam_.step_count(); }
  void SetOptimizerSteps(int64_t steps) override {
    adam_.set_step_count(steps);
  }
  void ScaleLearningRate(double factor) override {
    adam_.set_learning_rate(config_.learning_rate * factor);
  }
  uint64_t SamplerCursor() const override {
    return sampler_ != nullptr ? sampler_->cursor() : 0;
  }
  void SetSamplerCursor(uint64_t cursor) override {
    if (sampler_ != nullptr) sampler_->set_cursor(cursor);
  }

 private:
  /// LightGCN mean-readout propagation of a plain matrix (no autograd).
  tensor::Matrix PropagatePlain(const tensor::Matrix& x0) const;

  const data::Dataset* dataset_ = nullptr;
  train::TrainConfig config_;
  train::Adam adam_;
  sparse::CsrMatrix adjacency_;
  std::unique_ptr<train::BprSampler> sampler_;

  train::Parameter online_emb_;    // trained
  train::Parameter predictor_w_;   // T x T head
  train::Parameter predictor_b_;   // 1 x T
  tensor::Matrix target_emb_;      // EMA of online_emb_, no gradients
  tensor::Matrix target_final_;    // propagated target, refreshed per epoch
  tensor::Matrix online_final_;    // propagated online, for scoring
};

}  // namespace layergcn::models

#endif  // LAYERGCN_MODELS_BUIR_H_
