// IMP-GCN (Liu et al., WWW 2021): interest-aware message passing.
//
// Users are partitioned into interest groups; the first graph-convolution
// layer is shared, and higher-order propagation runs only inside each
// group's subgraph (group users + all items, edges restricted to the
// group's users). Item embeddings at layer l sum the per-group outputs;
// user embeddings come from their own group. The readout is LightGCN's
// mean over all layers.
//
// Simplification vs. the original: the original learns the grouping with a
// small MLP over the fused ego/first-layer embedding; we assign groups by
// spherical k-means over the same fused embedding, refreshed every epoch.
// This preserves the mechanism under study (intra-group high-order
// propagation) without an extra sub-network (see DESIGN.md §3).

#ifndef LAYERGCN_MODELS_IMP_GCN_H_
#define LAYERGCN_MODELS_IMP_GCN_H_

#include <string>
#include <vector>

#include "models/embedding_recommender.h"

namespace layergcn::models {

/// IMP-GCN with k-means interest grouping.
class ImpGcn : public EmbeddingRecommender {
 public:
  std::string name() const override { return "IMP-GCN"; }

  void BeginEpoch(int epoch, util::Rng* rng) override;

  /// Current group of each user (for tests / introspection).
  const std::vector<int>& user_groups() const { return user_group_; }

 protected:
  ag::Var Propagate(ag::Tape* tape, ag::Var x0, bool training,
                    util::Rng* rng) override;

 private:
  /// Re-clusters users on (X⁰ + ÂX⁰) rows and rebuilds the per-group
  /// normalized adjacencies.
  void RefreshGroups(util::Rng* rng);

  std::vector<int> user_group_;
  std::vector<sparse::CsrMatrix> group_adjacency_;
};

}  // namespace layergcn::models

#endif  // LAYERGCN_MODELS_IMP_GCN_H_
