// EHCF (Chen et al., AAAI 2020): efficient heterogeneous collaborative
// filtering *without negative sampling*.
//
// The whole-data weighted regression loss
//
//   L = Σ_u Σ_i c_ui (r_ui − x_u·y_i)²,   c_ui = c⁺ for positives, c⁻ else
//
// is evaluated over ALL user-item cells in closed form without enumerating
// the negatives:
//
//   L = Σ_pos [(c⁺−c⁻)·r̂² − 2c⁺·r̂] + c⁻·Σ_{all} r̂² + const
//     = Σ_pos [(c⁺−c⁻)·r̂² − 2c⁺·r̂] + c⁻·⟨UᵀU, VᵀV⟩_F + const,
//
// which costs O((M + N)·T²) per step instead of O(N_U·N_I·T).
//
// Simplification vs. the original: EHCF stacks per-behavior transfer
// matrices for multi-behavior data; our datasets are single-behavior, so
// the model reduces to this efficient non-sampling objective (DESIGN.md §3).

#ifndef LAYERGCN_MODELS_EHCF_H_
#define LAYERGCN_MODELS_EHCF_H_

#include <string>
#include <vector>

#include "autograd/ops.h"
#include "train/adam.h"
#include "train/recommender.h"

namespace layergcn::models {

/// Non-sampling whole-data CF with the EHCF efficient loss.
class Ehcf : public train::Recommender {
 public:
  /// c⁺ = 1, c⁻ = negative_weight (uniform missing-data confidence).
  explicit Ehcf(double negative_weight = 0.05, int steps_per_epoch = 4)
      : neg_weight_(negative_weight), steps_per_epoch_(steps_per_epoch) {}

  std::string name() const override { return "EHCF"; }

  void Init(const data::Dataset& dataset, const train::TrainConfig& config,
            util::Rng* rng) override;
  double TrainEpoch(util::Rng* rng,
                    std::vector<double>* batch_losses) override;
  void PrepareEval() override {}
  tensor::Matrix ScoreUsers(const std::vector<int32_t>& users) const override;
  std::vector<train::Parameter*> Params() override;

  int64_t OptimizerSteps() const override { return adam_.step_count(); }
  void SetOptimizerSteps(int64_t steps) override {
    adam_.set_step_count(steps);
  }
  void ScaleLearningRate(double factor) override {
    adam_.set_learning_rate(config_.learning_rate * factor);
  }

 private:
  const data::Dataset* dataset_ = nullptr;
  train::TrainConfig config_;
  train::Adam adam_;
  double neg_weight_;
  int steps_per_epoch_;
  train::Parameter user_emb_;  // N_U x T
  train::Parameter item_emb_;  // N_I x T
};

}  // namespace layergcn::models

#endif  // LAYERGCN_MODELS_EHCF_H_
