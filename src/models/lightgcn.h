// LightGCN (He et al., SIGIR 2020) — paper Eq. 2 / Eq. 13.
//
// Linear propagation X^{l+1} = Â X^l with a mean readout over the ego layer
// and all hidden layers. Two extensions used by the paper's analysis:
//
//   * kLearnableWeights replaces the fixed mean with softmax-normalized
//     learnable layer weights — the variant whose weight trajectory
//     collapses onto the ego layer in paper Fig. 1;
//   * layer_weight_history() exposes that trajectory for the Fig. 1 bench.

#ifndef LAYERGCN_MODELS_LIGHTGCN_H_
#define LAYERGCN_MODELS_LIGHTGCN_H_

#include <string>
#include <vector>

#include "models/embedding_recommender.h"

namespace layergcn::models {

/// Readout used to combine the layer embeddings.
enum class LightGcnReadout {
  kMean,              // LightGCN default: (1/(L+1)) Σ_l X^l
  kLearnableWeights,  // softmax(w) ⊙ layers (Fig. 1 variant)
};

/// LightGCN with optional learnable layer weights.
class LightGcn : public EmbeddingRecommender {
 public:
  explicit LightGcn(LightGcnReadout readout = LightGcnReadout::kMean)
      : readout_(readout) {}

  std::string name() const override {
    return readout_ == LightGcnReadout::kMean ? "LightGCN"
                                              : "LightGCN-LearnW";
  }

  /// Softmax layer weights recorded after every epoch (learnable variant
  /// only): history[e][l] is the weight of layer l (0 = ego) after epoch e.
  const std::vector<std::vector<double>>& layer_weight_history() const {
    return weight_history_;
  }

  void BeginEpoch(int epoch, util::Rng* rng) override;

 protected:
  void InitExtraParams(const train::TrainConfig& config,
                       util::Rng* rng) override;
  ag::Var Propagate(ag::Tape* tape, ag::Var x0, bool training,
                    util::Rng* rng) override;

 private:
  /// Current softmax-normalized layer weights (learnable variant).
  std::vector<double> CurrentWeights() const;

  LightGcnReadout readout_;
  train::Parameter layer_logits_;  // 1 x (L+1), learnable variant only
  std::vector<std::vector<double>> weight_history_;
};

}  // namespace layergcn::models

#endif  // LAYERGCN_MODELS_LIGHTGCN_H_
