// BPR matrix factorization (Rendle et al. 2009) — the classic CF baseline
// in paper Table II.

#ifndef LAYERGCN_MODELS_BPR_MF_H_
#define LAYERGCN_MODELS_BPR_MF_H_

#include <string>

#include "models/embedding_recommender.h"

namespace layergcn::models {

/// Plain embedding dot-product model trained with the pairwise BPR loss —
/// i.e. a 0-layer GCN.
class BprMf : public EmbeddingRecommender {
 public:
  std::string name() const override { return "BPR"; }

 protected:
  ag::Var Propagate(ag::Tape* /*tape*/, ag::Var x0, bool /*training*/,
                    util::Rng* /*rng*/) override {
    return x0;
  }
};

}  // namespace layergcn::models

#endif  // LAYERGCN_MODELS_BPR_MF_H_
