// Mult-VAE (Liang et al., WWW 2018): variational autoencoder for implicit
// collaborative filtering.
//
// Encoder: normalized user history row → tanh MLP → (μ, log σ²);
// reparameterized z; decoder MLP → logits over items. The objective is the
// multinomial log-likelihood plus β-annealed KL (β rises linearly to
// vae_beta over training). Scoring feeds μ through the decoder.

#ifndef LAYERGCN_MODELS_MULTIVAE_H_
#define LAYERGCN_MODELS_MULTIVAE_H_

#include <string>
#include <vector>

#include "autograd/ops.h"
#include "train/adam.h"
#include "train/recommender.h"

namespace layergcn::models {

/// Mult-VAE^{PR} with one hidden layer on each side.
class MultiVae : public train::Recommender {
 public:
  std::string name() const override { return "MultiVAE"; }

  void Init(const data::Dataset& dataset, const train::TrainConfig& config,
            util::Rng* rng) override;
  double TrainEpoch(util::Rng* rng,
                    std::vector<double>* batch_losses) override;
  void PrepareEval() override {}
  tensor::Matrix ScoreUsers(const std::vector<int32_t>& users) const override;
  std::vector<train::Parameter*> Params() override;

  int64_t OptimizerSteps() const override { return adam_.step_count(); }
  void SetOptimizerSteps(int64_t steps) override {
    adam_.set_step_count(steps);
  }
  void ScaleLearningRate(double factor) override {
    adam_.set_learning_rate(config_.learning_rate * factor);
  }

 private:
  /// L2-normalized binary history rows for the given users (B x N_I).
  tensor::Matrix HistoryRows(const std::vector<int32_t>& users) const;

  const data::Dataset* dataset_ = nullptr;
  train::TrainConfig config_;
  train::Adam adam_;
  int epoch_ = 0;

  // Encoder.
  train::Parameter enc_w1_, enc_b1_;
  train::Parameter enc_w_mu_, enc_b_mu_;
  train::Parameter enc_w_logvar_, enc_b_logvar_;
  // Decoder.
  train::Parameter dec_w1_, dec_b1_;
  train::Parameter dec_w2_, dec_b2_;
};

}  // namespace layergcn::models

#endif  // LAYERGCN_MODELS_MULTIVAE_H_
