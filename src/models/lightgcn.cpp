#include "models/lightgcn.h"

#include "tensor/ops.h"

namespace layergcn::models {

void LightGcn::InitExtraParams(const train::TrainConfig& config,
                               util::Rng* /*rng*/) {
  weight_history_.clear();
  if (readout_ == LightGcnReadout::kLearnableWeights) {
    // Zero logits => uniform softmax: the learnable variant starts exactly
    // at LightGCN's mean readout.
    layer_logits_ =
        train::Parameter("layer_logits", 1, config.num_layers + 1);
    layer_logits_.InitConstant(0.f);
    extra_params_.push_back(&layer_logits_);
  }
}

std::vector<double> LightGcn::CurrentWeights() const {
  const tensor::Matrix w = tensor::SoftmaxRows(layer_logits_.value);
  std::vector<double> out(static_cast<size_t>(w.cols()));
  for (int64_t c = 0; c < w.cols(); ++c) out[static_cast<size_t>(c)] = w(0, c);
  return out;
}

void LightGcn::BeginEpoch(int epoch, util::Rng* rng) {
  EmbeddingRecommender::BeginEpoch(epoch, rng);
  if (readout_ == LightGcnReadout::kLearnableWeights && epoch > 1) {
    // Record the weights reached by the previous epoch (Fig. 1 trajectory).
    weight_history_.push_back(CurrentWeights());
  }
}

ag::Var LightGcn::Propagate(ag::Tape* tape, ag::Var x0, bool training,
                            util::Rng* /*rng*/) {
  const sparse::CsrMatrix* adj = adjacency(training);
  std::vector<ag::Var> layers{x0};
  ag::Var x = x0;
  for (int l = 0; l < config_.num_layers; ++l) {
    x = ag::SpMMSymmetric(adj, x);
    layers.push_back(x);
  }
  if (readout_ == LightGcnReadout::kMean) {
    return ag::Scale(ag::AddN(layers),
                     1.f / static_cast<float>(layers.size()));
  }
  ag::Var logits = tape->Parameter(&layer_logits_.value, &layer_logits_.grad);
  ag::Var weights = ag::Transpose(ag::SoftmaxRows(logits));  // (L+1) x 1
  return ag::LinComb(layers, weights);
}

}  // namespace layergcn::models
