#include "models/buir.h"

#include "tensor/ops.h"
#include "util/logging.h"

namespace layergcn::models {

void Buir::Init(const data::Dataset& dataset, const train::TrainConfig& config,
                util::Rng* rng) {
  dataset_ = &dataset;
  config_ = config;
  adam_ = train::Adam(train::AdamConfig{.learning_rate = config.learning_rate});
  adjacency_ = dataset.train_graph.NormalizedAdjacency();
  sampler_ = std::make_unique<train::BprSampler>(&dataset.train_graph);

  const int64_t n = dataset.train_graph.num_nodes();
  online_emb_ = train::Parameter("buir_online", n, config.embedding_dim);
  online_emb_.InitXavier(rng);
  predictor_w_ =
      train::Parameter("buir_pred_w", config.embedding_dim,
                       config.embedding_dim);
  predictor_w_.InitXavier(rng);
  predictor_b_ = train::Parameter("buir_pred_b", 1, config.embedding_dim);
  predictor_b_.InitConstant(0.f);
  target_emb_ = online_emb_.value;  // target starts as a copy
}

tensor::Matrix Buir::PropagatePlain(const tensor::Matrix& x0) const {
  tensor::Matrix acc = x0;
  tensor::Matrix x = x0;
  for (int l = 0; l < config_.num_layers; ++l) {
    x = adjacency_.Multiply(x);
    tensor::AddInPlace(&acc, x);
  }
  tensor::ScaleInPlace(&acc, 1.f / static_cast<float>(config_.num_layers + 1));
  return acc;
}

void Buir::BeginEpoch(int /*epoch*/, util::Rng* /*rng*/) {
  // Refresh the propagated target representations once per epoch.
  target_final_ = PropagatePlain(target_emb_);
}

std::vector<train::Parameter*> Buir::Params() {
  return {&online_emb_, &predictor_w_, &predictor_b_};
}

double Buir::TrainEpoch(util::Rng* rng, std::vector<double>* batch_losses) {
  sampler_->BeginEpoch(rng);
  train::BprBatch batch;
  double total = 0.0;
  int64_t batches = 0;
  std::vector<train::Parameter*> params = Params();
  const int32_t nu = dataset_->num_users;
  const double m = config_.buir_momentum;

  while (sampler_->NextBatch(config_.batch_size, rng, &batch)) {
    std::vector<int32_t> item_rows(batch.pos_items.size());
    for (size_t k = 0; k < batch.pos_items.size(); ++k) {
      item_rows[k] = batch.pos_items[k] + nu;
    }

    ag::Tape tape;
    ag::Var x0 = tape.Parameter(&online_emb_.value, &online_emb_.grad);
    ag::Var w = tape.Parameter(&predictor_w_.value, &predictor_w_.grad);
    ag::Var bias = tape.Parameter(&predictor_b_.value, &predictor_b_.grad);

    // Online LightGCN propagation.
    std::vector<ag::Var> layers{x0};
    ag::Var x = x0;
    for (int l = 0; l < config_.num_layers; ++l) {
      x = ag::SpMMSymmetric(&adjacency_, x);
      layers.push_back(x);
    }
    ag::Var online_final = ag::Scale(
        ag::AddN(layers), 1.f / static_cast<float>(layers.size()));

    ag::Var ou = ag::GatherRows(online_final, batch.users);
    ag::Var oi = ag::GatherRows(online_final, item_rows);
    ag::Var pu = ag::AddRowVector(ag::MatMul(ou, w), bias);
    ag::Var pi = ag::AddRowVector(ag::MatMul(oi, w), bias);

    ag::Var tu = tape.Constant(tensor::GatherRows(target_final_, batch.users));
    ag::Var ti = tape.Constant(tensor::GatherRows(target_final_, item_rows));

    // 2 − 2·cos on both directions.
    ag::Var cos_ui = ag::RowwiseCosine(pu, ti, 1e-8f);
    ag::Var cos_iu = ag::RowwiseCosine(pi, tu, 1e-8f);
    ag::Var loss = ag::AddScalar(
        ag::Scale(ag::Add(ag::Mean(cos_ui), ag::Mean(cos_iu)), -2.f), 4.f);

    tape.Backward(loss);
    adam_.Step(params);

    // EMA target update after every step: θ_tg ← m θ_tg + (1−m) θ_on.
    float* tg = target_emb_.data();
    const float* on = online_emb_.value.data();
    const float mf = static_cast<float>(m);
    for (int64_t i = 0; i < target_emb_.size(); ++i) {
      tg[i] = mf * tg[i] + (1.f - mf) * on[i];
    }

    const double lv = tape.value(loss).scalar();
    total += lv;
    if (batch_losses != nullptr) batch_losses->push_back(lv);
    ++batches;
  }
  return batches > 0 ? total / static_cast<double>(batches) : 0.0;
}

void Buir::PrepareEval() {
  online_final_ = PropagatePlain(online_emb_.value);
  target_final_ = PropagatePlain(target_emb_);
}

tensor::Matrix Buir::ScoreUsers(const std::vector<int32_t>& users) const {
  LAYERGCN_CHECK(!online_final_.empty());
  // BUIR scores with the sum of both encoders' representations.
  namespace t = layergcn::tensor;
  const int32_t nu = dataset_->num_users;
  std::vector<int32_t> item_rows(static_cast<size_t>(dataset_->num_items));
  for (int32_t i = 0; i < dataset_->num_items; ++i) {
    item_rows[static_cast<size_t>(i)] = nu + i;
  }
  tensor::Matrix u = t::Add(t::GatherRows(online_final_, users),
                            t::GatherRows(target_final_, users));
  tensor::Matrix v = t::Add(t::GatherRows(online_final_, item_rows),
                            t::GatherRows(target_final_, item_rows));
  return t::MatMul(u, v, false, true);
}

}  // namespace layergcn::models
