#include "models/ehcf.h"

#include "tensor/ops.h"
#include "util/logging.h"

namespace layergcn::models {

void Ehcf::Init(const data::Dataset& dataset, const train::TrainConfig& config,
                util::Rng* rng) {
  dataset_ = &dataset;
  config_ = config;
  adam_ = train::Adam(train::AdamConfig{.learning_rate = config.learning_rate});
  user_emb_ = train::Parameter("ehcf_users", dataset.num_users,
                               config.embedding_dim);
  item_emb_ = train::Parameter("ehcf_items", dataset.num_items,
                               config.embedding_dim);
  user_emb_.InitXavier(rng);
  item_emb_.InitXavier(rng);
}

std::vector<train::Parameter*> Ehcf::Params() {
  return {&user_emb_, &item_emb_};
}

double Ehcf::TrainEpoch(util::Rng* /*rng*/,
                        std::vector<double>* batch_losses) {
  const auto& g = dataset_->train_graph;
  const float c_pos = 1.f;
  const float c_neg = static_cast<float>(neg_weight_);

  double total = 0.0;
  std::vector<train::Parameter*> params = Params();
  for (int step = 0; step < steps_per_epoch_; ++step) {
    ag::Tape tape;
    ag::Var users = tape.Parameter(&user_emb_.value, &user_emb_.grad);
    ag::Var items = tape.Parameter(&item_emb_.value, &item_emb_.grad);

    // Positive part: Σ_pos [(c⁺−c⁻) r̂² − 2 c⁺ r̂].
    ag::Var eu = ag::GatherRows(users, g.edge_users());
    ag::Var ei = ag::GatherRows(items, g.edge_items());
    ag::Var pos_scores = ag::RowDots(eu, ei);
    ag::Var pos_part =
        ag::Add(ag::Scale(ag::Sum(ag::Square(pos_scores)), c_pos - c_neg),
                ag::Scale(ag::Sum(pos_scores), -2.f * c_pos));

    // All-cell part: c⁻ · ⟨UᵀU, VᵀV⟩_F = c⁻ Σ_{u,i} r̂²_{ui}.
    ag::Var gram_u = ag::MatMul(users, users, /*trans_a=*/true);
    ag::Var gram_v = ag::MatMul(items, items, /*trans_a=*/true);
    ag::Var all_part =
        ag::Scale(ag::Sum(ag::Hadamard(gram_u, gram_v)), c_neg);

    // Normalize by M so the loss magnitude is comparable across datasets.
    const float inv_m = 1.f / static_cast<float>(g.num_edges());
    ag::Var loss = ag::Scale(ag::Add(pos_part, all_part), inv_m);
    if (config_.l2_reg > 0.0) {
      ag::Var reg = ag::AddN({ag::SumSquares(users), ag::SumSquares(items)});
      loss = ag::Add(loss, ag::Scale(reg, static_cast<float>(config_.l2_reg)));
    }

    tape.Backward(loss);
    adam_.Step(params);
    const double lv = tape.value(loss).scalar();
    total += lv;
    if (batch_losses != nullptr) batch_losses->push_back(lv);
  }
  return total / static_cast<double>(steps_per_epoch_);
}

tensor::Matrix Ehcf::ScoreUsers(const std::vector<int32_t>& users) const {
  const tensor::Matrix u = tensor::GatherRows(user_emb_.value, users);
  return tensor::MatMul(u, item_emb_.value, false, true);
}

}  // namespace layergcn::models
