#include "models/ngcf.h"

#include "tensor/ops.h"
#include "util/strings.h"

namespace layergcn::models {

void Ngcf::InitExtraParams(const train::TrainConfig& config, util::Rng* rng) {
  w1_.clear();
  w2_.clear();
  w1_.reserve(static_cast<size_t>(config.num_layers));
  w2_.reserve(static_cast<size_t>(config.num_layers));
  for (int l = 0; l < config.num_layers; ++l) {
    w1_.emplace_back(util::StrFormat("ngcf_w1_%d", l), config.embedding_dim,
                     config.embedding_dim);
    w2_.emplace_back(util::StrFormat("ngcf_w2_%d", l), config.embedding_dim,
                     config.embedding_dim);
    w1_.back().InitXavier(rng);
    w2_.back().InitXavier(rng);
  }
  for (int l = 0; l < config.num_layers; ++l) {
    extra_params_.push_back(&w1_[static_cast<size_t>(l)]);
    extra_params_.push_back(&w2_[static_cast<size_t>(l)]);
  }
}

ag::Var Ngcf::Propagate(ag::Tape* tape, ag::Var x0, bool training,
                        util::Rng* rng) {
  const sparse::CsrMatrix* adj = adjacency(training);
  const double keep = 1.0 - config_.message_dropout;
  std::vector<ag::Var> layers{x0};
  ag::Var x = x0;
  for (int l = 0; l < config_.num_layers; ++l) {
    ag::Var w1 = tape->Parameter(&w1_[static_cast<size_t>(l)].value,
                                 &w1_[static_cast<size_t>(l)].grad);
    ag::Var w2 = tape->Parameter(&w2_[static_cast<size_t>(l)].value,
                                 &w2_[static_cast<size_t>(l)].grad);
    ag::Var propagated = ag::SpMMSymmetric(adj, x);
    ag::Var side = ag::MatMul(ag::Add(propagated, x), w1);
    ag::Var bi = ag::MatMul(ag::Hadamard(propagated, x), w2);
    ag::Var h = ag::LeakyRelu(ag::Add(side, bi), 0.2f);
    if (training && rng != nullptr && config_.message_dropout > 0.0) {
      tensor::Matrix mask(tape->value(h).rows(), tape->value(h).cols());
      const float scale = static_cast<float>(1.0 / keep);
      for (int64_t i = 0; i < mask.size(); ++i) {
        mask.data()[i] = rng->NextBernoulli(keep) ? scale : 0.f;
      }
      h = ag::Dropout(h, mask);
    }
    h = ag::NormalizeRows(h);
    layers.push_back(h);
    x = h;
  }
  return ag::ConcatCols(layers);
}

}  // namespace layergcn::models
