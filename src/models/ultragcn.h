// UltraGCN (Mao et al., CIKM 2021).
//
// Skips explicit graph convolution entirely: it approximates the limit of
// infinite-layer propagation with degree-derived constraint weights
// β_{u,i} = (1/d_u)·√((d_u+1)/(d_i+1)) on user-item pairs, a weighted
// binary-cross-entropy objective with multiple sampled negatives, and an
// auxiliary item-item co-occurrence constraint over each positive item's
// top-k co-occurring items.

#ifndef LAYERGCN_MODELS_ULTRAGCN_H_
#define LAYERGCN_MODELS_ULTRAGCN_H_

#include <string>
#include <vector>

#include "models/embedding_recommender.h"

namespace layergcn::models {

/// UltraGCN with the user-item constraint loss and item-item graph loss.
class UltraGcn : public EmbeddingRecommender {
 public:
  std::string name() const override { return "UltraGCN"; }

 protected:
  void InitExtraParams(const train::TrainConfig& config,
                       util::Rng* rng) override;
  ag::Var Propagate(ag::Tape* tape, ag::Var x0, bool training,
                    util::Rng* rng) override;
  ag::Var BatchLoss(ag::Tape* tape, ag::Var x0,
                    const train::BprBatch& batch, util::Rng* rng) override;

 private:
  /// β_{u,i} of the constraint loss.
  float Beta(int32_t user, int32_t item) const;

  /// Top-k co-occurring items and their normalized weights, per item.
  std::vector<std::vector<std::pair<int32_t, float>>> item_neighbors_;
};

}  // namespace layergcn::models

#endif  // LAYERGCN_MODELS_ULTRAGCN_H_
