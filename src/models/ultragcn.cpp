#include "models/ultragcn.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/logging.h"

namespace layergcn::models {

void UltraGcn::InitExtraParams(const train::TrainConfig& config,
                               util::Rng* /*rng*/) {
  // Item-item co-occurrence graph G = RᵀR, normalized by √(d_i d_j), top-k
  // neighbors kept per item.
  const auto& g = dataset_->train_graph;
  const int32_t num_items = g.num_items();
  std::vector<std::unordered_map<int32_t, int32_t>> cooc(
      static_cast<size_t>(num_items));
  for (const auto& items : g.user_items()) {
    for (size_t a = 0; a < items.size(); ++a) {
      for (size_t b = 0; b < items.size(); ++b) {
        if (a == b) continue;
        ++cooc[static_cast<size_t>(items[a])][items[b]];
      }
    }
  }
  item_neighbors_.assign(static_cast<size_t>(num_items), {});
  for (int32_t i = 0; i < num_items; ++i) {
    const double di = std::max(1, g.ItemDegree(i));
    std::vector<std::pair<int32_t, float>> neigh;
    neigh.reserve(cooc[static_cast<size_t>(i)].size());
    for (const auto& [j, count] : cooc[static_cast<size_t>(i)]) {
      const double dj = std::max(1, g.ItemDegree(j));
      neigh.emplace_back(
          j, static_cast<float>(count / (std::sqrt(di) * std::sqrt(dj))));
    }
    const size_t k = static_cast<size_t>(config.ultra_item_topk);
    if (neigh.size() > k) {
      std::partial_sort(neigh.begin(), neigh.begin() + static_cast<int64_t>(k),
                        neigh.end(), [](const auto& a, const auto& b) {
                          return a.second > b.second;
                        });
      neigh.resize(k);
    }
    item_neighbors_[static_cast<size_t>(i)] = std::move(neigh);
  }
}

ag::Var UltraGcn::Propagate(ag::Tape* /*tape*/, ag::Var x0, bool /*training*/,
                            util::Rng* /*rng*/) {
  // No message passing: scores come straight from the ego embeddings.
  return x0;
}

float UltraGcn::Beta(int32_t user, int32_t item) const {
  const auto& g = dataset_->train_graph;
  const double du = std::max(1, g.UserDegree(user));
  const double di = std::max(1, g.ItemDegree(item));
  return static_cast<float>((1.0 / du) * std::sqrt((du + 1.0) / (di + 1.0)));
}

ag::Var UltraGcn::BatchLoss(ag::Tape* tape, ag::Var x0,
                            const train::BprBatch& batch, util::Rng* rng) {
  const int32_t nu = dataset_->num_users;
  const int64_t b = batch.size();
  const int num_neg = config_.ultra_num_negatives;

  // --- User-item constraint loss (weighted BCE). ---
  std::vector<int32_t> pos_rows(static_cast<size_t>(b));
  tensor::Matrix pos_w(b, 1);
  for (int64_t k = 0; k < b; ++k) {
    pos_rows[static_cast<size_t>(k)] = batch.pos_items[static_cast<size_t>(k)] + nu;
    pos_w(k, 0) = static_cast<float>(
        config_.ultra_w1 +
        config_.ultra_w2 * Beta(batch.users[static_cast<size_t>(k)],
                                batch.pos_items[static_cast<size_t>(k)]));
  }
  ag::Var eu = ag::GatherRows(x0, batch.users);
  ag::Var ei = ag::GatherRows(x0, pos_rows);
  ag::Var pos_scores = ag::RowDots(eu, ei);
  // −log σ(s) = softplus(−s).
  ag::Var pos_loss = ag::Mean(
      ag::Hadamard(ag::Softplus(ag::Negate(pos_scores)),
                   tape->Constant(std::move(pos_w))));

  // Negatives: num_neg per positive, flattened.
  std::vector<int32_t> neg_users(static_cast<size_t>(b * num_neg));
  std::vector<int32_t> neg_rows(static_cast<size_t>(b * num_neg));
  tensor::Matrix neg_w(b * num_neg, 1);
  const int32_t num_items = dataset_->num_items;
  for (int64_t k = 0; k < b; ++k) {
    const int32_t u = batch.users[static_cast<size_t>(k)];
    for (int c = 0; c < num_neg; ++c) {
      const int64_t idx = k * num_neg + c;
      const int32_t j = static_cast<int32_t>(
          rng->NextBounded(static_cast<uint64_t>(num_items)));
      neg_users[static_cast<size_t>(idx)] = u;
      neg_rows[static_cast<size_t>(idx)] = j + nu;
      neg_w(idx, 0) = static_cast<float>(config_.ultra_w3 +
                                         config_.ultra_w4 * Beta(u, j));
    }
  }
  ag::Var eun = ag::GatherRows(x0, neg_users);
  ag::Var ejn = ag::GatherRows(x0, neg_rows);
  ag::Var neg_scores = ag::RowDots(eun, ejn);
  // −log σ(−s) = softplus(s); the mean over all B·K terms averages the
  // negatives of each positive.
  ag::Var neg_loss = ag::Mean(ag::Hadamard(
      ag::Softplus(neg_scores), tape->Constant(std::move(neg_w))));

  // --- Item-item graph constraint loss. ---
  std::vector<int32_t> ii_users;
  std::vector<int32_t> ii_rows;
  std::vector<float> ii_w;
  for (int64_t k = 0; k < b; ++k) {
    const int32_t u = batch.users[static_cast<size_t>(k)];
    const auto& neigh =
        item_neighbors_[static_cast<size_t>(batch.pos_items[static_cast<size_t>(k)])];
    for (const auto& [j, w] : neigh) {
      ii_users.push_back(u);
      ii_rows.push_back(j + nu);
      ii_w.push_back(w);
    }
  }
  ag::Var loss = ag::Add(pos_loss, neg_loss);
  if (!ii_users.empty()) {
    tensor::Matrix w(static_cast<int64_t>(ii_w.size()), 1);
    for (size_t k = 0; k < ii_w.size(); ++k) {
      w(static_cast<int64_t>(k), 0) = ii_w[k];
    }
    ag::Var euii = ag::GatherRows(x0, ii_users);
    ag::Var ejii = ag::GatherRows(x0, ii_rows);
    ag::Var ii_scores = ag::RowDots(euii, ejii);
    ag::Var ii_loss = ag::Mean(ag::Hadamard(
        ag::Softplus(ag::Negate(ii_scores)), tape->Constant(std::move(w))));
    loss = ag::Add(loss,
                   ag::Scale(ii_loss,
                             static_cast<float>(config_.ultra_item_loss_weight)));
  }

  if (config_.l2_reg > 0.0) {
    ag::Var reg = ag::AddN({ag::SumSquares(eu), ag::SumSquares(ei)});
    loss = ag::Add(loss, ag::Scale(reg, static_cast<float>(
                                             config_.l2_reg /
                                             static_cast<double>(b))));
  }
  return loss;
}

}  // namespace layergcn::models
