#include "models/imp_gcn.h"

#include <cmath>

#include "tensor/ops.h"
#include "util/logging.h"

namespace layergcn::models {

void ImpGcn::BeginEpoch(int epoch, util::Rng* rng) {
  EmbeddingRecommender::BeginEpoch(epoch, rng);
  RefreshGroups(rng);
}

void ImpGcn::RefreshGroups(util::Rng* rng) {
  const auto& g = dataset_->train_graph;
  const int32_t nu = g.num_users();
  const int groups = std::max(1, config_.imp_num_groups);

  // Fused interest feature per user: row-normalized X⁰_u + (ÂX⁰)_u.
  const sparse::CsrMatrix* adj = adjacency(/*training=*/false);
  tensor::Matrix prop = adj->Multiply(embeddings_.value);
  tensor::AddInPlace(&prop, embeddings_.value);
  std::vector<int32_t> user_rows(static_cast<size_t>(nu));
  for (int32_t u = 0; u < nu; ++u) user_rows[static_cast<size_t>(u)] = u;
  tensor::Matrix feat =
      tensor::NormalizeRowsL2(tensor::GatherRows(prop, user_rows));

  // Spherical k-means, few iterations (features are unit rows, so cosine
  // similarity is the inner product).
  const int64_t t = feat.cols();
  tensor::Matrix centroids(groups, t);
  for (int c = 0; c < groups; ++c) {
    const int32_t seed_user = rng->NextInt(0, nu);
    std::copy(feat.row(seed_user), feat.row(seed_user) + t,
              centroids.row(c));
  }
  user_group_.assign(static_cast<size_t>(nu), 0);
  constexpr int kIters = 5;
  for (int iter = 0; iter < kIters; ++iter) {
    // Assign.
    for (int32_t u = 0; u < nu; ++u) {
      const float* fu = feat.row(u);
      int best = 0;
      double best_sim = -1e30;
      for (int c = 0; c < groups; ++c) {
        const float* cc = centroids.row(c);
        double sim = 0.0;
        for (int64_t d = 0; d < t; ++d) sim += fu[d] * cc[d];
        if (sim > best_sim) {
          best_sim = sim;
          best = c;
        }
      }
      user_group_[static_cast<size_t>(u)] = best;
    }
    // Update.
    centroids.Zero();
    for (int32_t u = 0; u < nu; ++u) {
      float* cc = centroids.row(user_group_[static_cast<size_t>(u)]);
      const float* fu = feat.row(u);
      for (int64_t d = 0; d < t; ++d) cc[d] += fu[d];
    }
    centroids = tensor::NormalizeRowsL2(centroids);
  }

  // Per-group normalized adjacency over the full node space with only the
  // group's users' edges.
  group_adjacency_.clear();
  group_adjacency_.reserve(static_cast<size_t>(groups));
  const auto& edge_users = g.edge_users();
  for (int c = 0; c < groups; ++c) {
    std::vector<int64_t> kept;
    for (int64_t e = 0; e < g.num_edges(); ++e) {
      if (user_group_[static_cast<size_t>(edge_users[static_cast<size_t>(e)])] ==
          c) {
        kept.push_back(e);
      }
    }
    group_adjacency_.push_back(g.NormalizedAdjacencySubset(kept));
  }
}

ag::Var ImpGcn::Propagate(ag::Tape* tape, ag::Var x0, bool training,
                          util::Rng* /*rng*/) {
  LAYERGCN_CHECK(!group_adjacency_.empty())
      << "BeginEpoch() must run before propagation";
  const sparse::CsrMatrix* adj = adjacency(training);
  // Layer 1 is shared across groups.
  ag::Var x1 = ag::SpMMSymmetric(adj, x0);
  std::vector<ag::Var> layers{x0, x1};

  // Higher layers: per-group propagation; the sum over groups yields the
  // combined layer embedding (a user's row is non-zero only in its own
  // group's output; item rows accumulate over groups).
  std::vector<ag::Var> group_x(group_adjacency_.size(), x1);
  for (int l = 1; l < config_.num_layers; ++l) {
    std::vector<ag::Var> outs;
    outs.reserve(group_adjacency_.size());
    for (size_t c = 0; c < group_adjacency_.size(); ++c) {
      group_x[c] = ag::SpMMSymmetric(&group_adjacency_[c], group_x[c]);
      outs.push_back(group_x[c]);
    }
    layers.push_back(outs.size() == 1 ? outs[0] : ag::AddN(outs));
  }
  (void)tape;
  return ag::Scale(ag::AddN(layers), 1.f / static_cast<float>(layers.size()));
}

}  // namespace layergcn::models
