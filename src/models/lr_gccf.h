// LR-GCCF (Chen et al., AAAI 2020): linear residual graph CF.
//
// Removes the non-linearity from GCN and keeps a residual preference
// structure by concatenating every layer's embedding for prediction:
// X = [X⁰ ‖ X¹ ‖ ... ‖ X^L].

#ifndef LAYERGCN_MODELS_LR_GCCF_H_
#define LAYERGCN_MODELS_LR_GCCF_H_

#include <string>

#include "models/embedding_recommender.h"

namespace layergcn::models {

/// Linear-residual graph collaborative filtering with concat readout.
class LrGccf : public EmbeddingRecommender {
 public:
  std::string name() const override { return "LR-GCCF"; }

 protected:
  ag::Var Propagate(ag::Tape* tape, ag::Var x0, bool training,
                    util::Rng* rng) override;
};

}  // namespace layergcn::models

#endif  // LAYERGCN_MODELS_LR_GCCF_H_
