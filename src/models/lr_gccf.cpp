#include "models/lr_gccf.h"

namespace layergcn::models {

ag::Var LrGccf::Propagate(ag::Tape* /*tape*/, ag::Var x0, bool training,
                          util::Rng* /*rng*/) {
  const sparse::CsrMatrix* adj = adjacency(training);
  std::vector<ag::Var> layers{x0};
  ag::Var x = x0;
  for (int l = 0; l < config_.num_layers; ++l) {
    x = ag::SpMMSymmetric(adj, x);
    layers.push_back(x);
  }
  return ag::ConcatCols(layers);
}

}  // namespace layergcn::models
