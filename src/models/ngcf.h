// NGCF (Wang et al., SIGIR 2019): neural graph collaborative filtering.
//
// Per layer (matrix form, with self-connection folded in):
//
//   X^{l+1} = LeakyReLU( (Â X^l + X^l) W₁^l  +  (Â X^l ⊙ X^l) W₂^l )
//
// followed by message dropout during training and per-layer L2
// normalization; the readout concatenates all layers.

#ifndef LAYERGCN_MODELS_NGCF_H_
#define LAYERGCN_MODELS_NGCF_H_

#include <string>
#include <vector>

#include "models/embedding_recommender.h"

namespace layergcn::models {

/// NGCF with per-layer transform weights and message dropout.
class Ngcf : public EmbeddingRecommender {
 public:
  std::string name() const override { return "NGCF"; }

 protected:
  void InitExtraParams(const train::TrainConfig& config,
                       util::Rng* rng) override;
  ag::Var Propagate(ag::Tape* tape, ag::Var x0, bool training,
                    util::Rng* rng) override;

 private:
  std::vector<train::Parameter> w1_;  // T x T per layer
  std::vector<train::Parameter> w2_;  // T x T per layer
};

}  // namespace layergcn::models

#endif  // LAYERGCN_MODELS_NGCF_H_
