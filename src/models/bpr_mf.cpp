// BprMf is header-only; this translation unit anchors the library.
#include "models/bpr_mf.h"
