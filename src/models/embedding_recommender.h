// Shared base class for embedding-table recommenders trained with BPR.
//
// Covers BPR-MF and every GCN-style model: subclasses implement
// Propagate(), which maps the ego embedding table X⁰ to the final node
// representations X (paper Eq. 3 / Eq. 9); the base class provides the
// training loop over BPR batches (Eq. 11), the L2 penalty on X⁰ (Eq. 12),
// inference caching and inner-product scoring (Eq. 10).
//
// Models with a non-BPR objective (UltraGCN's constraint loss) override
// BatchLoss() instead; models that are not embedding-propagation shaped at
// all (MultiVAE, EHCF, BUIR) implement train::Recommender directly.

#ifndef LAYERGCN_MODELS_EMBEDDING_RECOMMENDER_H_
#define LAYERGCN_MODELS_EMBEDDING_RECOMMENDER_H_

#include <memory>
#include <string>
#include <vector>

#include "autograd/ops.h"
#include "autograd/tape.h"
#include "graph/edge_dropout.h"
#include "sparse/csr_matrix.h"
#include "train/adam.h"
#include "train/bpr_sampler.h"
#include "train/recommender.h"

namespace layergcn::models {

/// Base for all embedding-table models.
class EmbeddingRecommender : public train::Recommender {
 public:
  void Init(const data::Dataset& dataset, const train::TrainConfig& config,
            util::Rng* rng) override;
  void BeginEpoch(int epoch, util::Rng* rng) override;
  double TrainEpoch(util::Rng* rng,
                    std::vector<double>* batch_losses) override;
  void PrepareEval() override;
  tensor::Matrix ScoreUsers(const std::vector<int32_t>& users) const override;
  /// User/item blocks of the final embeddings — lets the evaluator rank
  /// through the fused blocked kernel (score = inner product, Eq. 10).
  train::EmbeddingView GetEmbeddingView() const override;
  std::vector<train::Parameter*> Params() override;

  // Checkpoint/resume hooks: Adam's step counter and the BPR sampler
  // cursor are the only mutable non-Parameter training state here.
  int64_t OptimizerSteps() const override { return adam_.step_count(); }
  void SetOptimizerSteps(int64_t steps) override {
    adam_.set_step_count(steps);
  }
  void ScaleLearningRate(double factor) override {
    adam_.set_learning_rate(config_.learning_rate * factor);
  }
  uint64_t SamplerCursor() const override;
  void SetSamplerCursor(uint64_t cursor) override;

  /// Final node embeddings computed by the last PrepareEval() (N x T', where
  /// T' may exceed the embedding dim for concat readouts).
  const tensor::Matrix& final_embeddings() const { return final_cache_; }

 protected:
  /// Whether this model prunes edges during training (LayerGCN does; the
  /// plain baselines do not). Queried once in Init().
  virtual bool UsesEdgeDropout() const { return false; }

  /// Builds extra parameters (weight matrices etc.). Default: none.
  virtual void InitExtraParams(const train::TrainConfig& config,
                               util::Rng* rng);

  /// Maps the ego table to final embeddings. `training` distinguishes the
  /// pruned training graph from the full inference graph and toggles
  /// message dropout. Must return an N x T' matrix variable.
  virtual ag::Var Propagate(ag::Tape* tape, ag::Var x0, bool training,
                            util::Rng* rng) = 0;

  /// Loss of one batch. Default: BPR over Propagate() + λ‖X⁰‖².
  virtual ag::Var BatchLoss(ag::Tape* tape, ag::Var x0,
                            const train::BprBatch& batch, util::Rng* rng);

  /// Hook after the optimizer step of each batch. Default: none.
  virtual void AfterBatch() {}

  /// Transition matrix for the current mode: Â_p while training with edge
  /// dropout, Â otherwise (paper §III-B1: inference uses the full graph).
  const sparse::CsrMatrix* adjacency(bool training) const {
    return training && uses_dropout_ ? &pruned_adjacency_ : &full_adjacency_;
  }

  const data::Dataset* dataset_ = nullptr;
  train::TrainConfig config_;
  train::Parameter embeddings_;  // X⁰, (N_U + N_I) x T
  std::vector<train::Parameter*> extra_params_;
  train::Adam adam_;

 private:
  sparse::CsrMatrix full_adjacency_;
  sparse::CsrMatrix pruned_adjacency_;
  std::unique_ptr<graph::EdgeDropout> edge_dropout_;
  std::unique_ptr<train::BprSampler> sampler_;
  tensor::Matrix final_cache_;
  tensor::Matrix user_cache_;  // rows 0..N_U of final_cache_
  tensor::Matrix item_cache_;  // rows N_U..N_U+N_I of final_cache_
  bool uses_dropout_ = false;
};

}  // namespace layergcn::models

#endif  // LAYERGCN_MODELS_EMBEDDING_RECOMMENDER_H_
