#include "models/embedding_recommender.h"

#include <algorithm>

#include "obs/trace.h"
#include "tensor/ops.h"
#include "train/stop_token.h"
#include "util/logging.h"

namespace layergcn::models {

void EmbeddingRecommender::Init(const data::Dataset& dataset,
                                const train::TrainConfig& config,
                                util::Rng* rng) {
  dataset_ = &dataset;
  config_ = config;
  adam_ = train::Adam(train::AdamConfig{.learning_rate = config.learning_rate});

  const int64_t n = dataset.train_graph.num_nodes();
  embeddings_ = train::Parameter("embeddings", n, config.embedding_dim);
  embeddings_.InitXavier(rng);
  extra_params_.clear();
  InitExtraParams(config, rng);

  full_adjacency_ = dataset.train_graph.NormalizedAdjacency();
  uses_dropout_ = UsesEdgeDropout() && config.edge_drop_ratio > 0.0 &&
                  config.edge_drop_kind != graph::EdgeDropKind::kNone;
  if (uses_dropout_) {
    edge_dropout_ = std::make_unique<graph::EdgeDropout>(
        &dataset.train_graph, config.edge_drop_kind, config.edge_drop_ratio);
  }
  sampler_ = std::make_unique<train::BprSampler>(&dataset.train_graph,
                                                 config.negative_sampling);
}

void EmbeddingRecommender::InitExtraParams(
    const train::TrainConfig& /*config*/, util::Rng* /*rng*/) {}

void EmbeddingRecommender::BeginEpoch(int epoch, util::Rng* rng) {
  if (uses_dropout_) {
    // Resample Â_p once per epoch (§III-B1), rebuilding into the existing
    // CSR storage: steady-state epochs allocate nothing.
    OBS_SPAN("train.resample_adjacency");
    edge_dropout_->SampleAdjacencyInto(rng, epoch, &pruned_adjacency_);
  }
}

ag::Var EmbeddingRecommender::BatchLoss(ag::Tape* tape, ag::Var x0,
                                        const train::BprBatch& batch,
                                        util::Rng* rng) {
  ag::Var final_emb = Propagate(tape, x0, /*training=*/true, rng);

  // Item rows live at offset N_U in the unified node space.
  const int32_t nu = dataset_->num_users;
  std::vector<int32_t> pos_rows(batch.pos_items.size());
  std::vector<int32_t> neg_rows(batch.neg_items.size());
  for (size_t k = 0; k < batch.pos_items.size(); ++k) {
    pos_rows[k] = batch.pos_items[k] + nu;
    neg_rows[k] = batch.neg_items[k] + nu;
  }
  ag::Var eu = ag::GatherRows(final_emb, batch.users);
  ag::Var ei = ag::GatherRows(final_emb, pos_rows);
  ag::Var ej = ag::GatherRows(final_emb, neg_rows);

  // -log σ(r_ui − r_uj) = softplus(r_uj − r_ui).
  ag::Var pos_scores = ag::RowDots(eu, ei);
  ag::Var neg_scores = ag::RowDots(eu, ej);
  ag::Var bpr = ag::Mean(ag::Softplus(ag::Sub(neg_scores, pos_scores)));

  if (config_.l2_reg > 0.0) {
    // λ‖X⁰‖² restricted to the embeddings used by the batch (the standard
    // BPR regularization granularity), normalized by batch size.
    ag::Var e0u = ag::GatherRows(x0, batch.users);
    ag::Var e0i = ag::GatherRows(x0, pos_rows);
    ag::Var e0j = ag::GatherRows(x0, neg_rows);
    ag::Var reg = ag::AddN({ag::SumSquares(e0u), ag::SumSquares(e0i),
                            ag::SumSquares(e0j)});
    const float coef = static_cast<float>(
        config_.l2_reg / static_cast<double>(batch.size()));
    return ag::Add(bpr, ag::Scale(reg, coef));
  }
  return bpr;
}

double EmbeddingRecommender::TrainEpoch(util::Rng* rng,
                                        std::vector<double>* batch_losses) {
  sampler_->BeginEpoch(rng);
  train::BprBatch batch;
  double total = 0.0;
  int64_t batches = 0;
  std::vector<train::Parameter*> params = Params();
  // Iterate by the known batch count (instead of draining NextBatch) so the
  // per-batch span never opens for the empty trailing call.
  const int64_t num_batches = sampler_->NumBatches(config_.batch_size);
  for (int64_t b = 0; b < num_batches; ++b) {
    // Graceful stop (SIGINT/SIGTERM): finish at a batch boundary; the
    // trainer discards this partial epoch and resumes from the last
    // checkpoint, so breaking here never corrupts the resumable state.
    if (train::StopRequested()) break;
    OBS_SPAN("train.batch");
    {
      OBS_SPAN("train.sampler");
      const bool ok = sampler_->NextBatch(config_.batch_size, rng, &batch);
      LAYERGCN_CHECK(ok) << "sampler exhausted before NumBatches()";
    }
    ag::Tape tape;
    ag::Var x0 = tape.Parameter(&embeddings_.value, &embeddings_.grad);
    ag::Var loss;
    {
      OBS_SPAN("train.forward");
      loss = BatchLoss(&tape, x0, batch, rng);
    }
    {
      OBS_SPAN("train.backward");
      tape.Backward(loss);
    }
    adam_.Step(params);  // opens its own "adam.step" span
    AfterBatch();
    const double loss_value = tape.value(loss).scalar();
    total += loss_value;
    if (batch_losses != nullptr) batch_losses->push_back(loss_value);
    ++batches;
  }
  return batches > 0 ? total / static_cast<double>(batches) : 0.0;
}

void EmbeddingRecommender::PrepareEval() {
  ag::Tape tape;
  ag::Var x0 = tape.Parameter(&embeddings_.value, &embeddings_.grad);
  ag::Var final_emb = Propagate(&tape, x0, /*training=*/false, nullptr);
  final_cache_ = tape.value(final_emb);

  // Split the unified table into its user/item blocks once; scoring and the
  // fused evaluator read these directly (rows are contiguous in the unified
  // node space: users first, items after).
  const int64_t nu = dataset_->num_users;
  const int64_t ni = dataset_->num_items;
  const int64_t width = final_cache_.cols();
  user_cache_ = tensor::Matrix(nu, width);
  item_cache_ = tensor::Matrix(ni, width);
  std::copy(final_cache_.row(0), final_cache_.row(0) + nu * width,
            user_cache_.data());
  std::copy(final_cache_.row(nu), final_cache_.row(nu) + ni * width,
            item_cache_.data());
}

tensor::Matrix EmbeddingRecommender::ScoreUsers(
    const std::vector<int32_t>& users) const {
  LAYERGCN_CHECK(!final_cache_.empty())
      << "PrepareEval() must run before scoring";
  const tensor::Matrix user_block = tensor::GatherRows(user_cache_, users);
  return tensor::MatMul(user_block, item_cache_, false, true);
}

train::EmbeddingView EmbeddingRecommender::GetEmbeddingView() const {
  if (final_cache_.empty()) return {};
  return {&user_cache_, &item_cache_};
}

uint64_t EmbeddingRecommender::SamplerCursor() const {
  return sampler_ != nullptr ? sampler_->cursor() : 0;
}

void EmbeddingRecommender::SetSamplerCursor(uint64_t cursor) {
  if (sampler_ != nullptr) sampler_->set_cursor(cursor);
}

std::vector<train::Parameter*> EmbeddingRecommender::Params() {
  std::vector<train::Parameter*> out{&embeddings_};
  out.insert(out.end(), extra_params_.begin(), extra_params_.end());
  return out;
}

}  // namespace layergcn::models
