// DeltaIngestor: folds committed WAL records into the live interaction set.
//
// The ingestor owns the mutable interaction state of the pipeline — a
// deduplicated event set routed into train / validation / test slices —
// and rebuilds the training graph incrementally: the bipartite graph is
// re-assembled from the merged edge list and its normalized adjacency is
// rebuilt in place through the same counting-sort machinery the trainer
// uses per epoch (BipartiteGraph::NormalizedAdjacencySubsetInto reusing an
// AdjacencyWorkspace and the CSR storage), so steady-state merges are
// O(E + N) with no comparison sort.
//
// Determinism: applying the same committed record sequence always produces
// the same state — id spaces grow to max-seen-id + 1, duplicates are
// dropped by (user, item) identity, and the held-out routing is a pure
// function of the acceptance index. Digest() condenses the whole merged
// state into one CRC-32 so tests and the chaos harness can assert that a
// crash-recovered replay is bit-identical to an unfaulted run.

#ifndef LAYERGCN_PIPELINE_DELTA_H_
#define LAYERGCN_PIPELINE_DELTA_H_

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "data/dataset.h"
#include "graph/bipartite_graph.h"
#include "pipeline/wal.h"
#include "sparse/csr_matrix.h"

namespace layergcn::pipeline {

struct DeltaOptions {
  /// Dataset name stamped on BuildDataset() results.
  std::string name = "pipeline";
  /// Of every `holdout_cycle` accepted events, one is routed to the
  /// validation slice and one to the test slice (>= 3; the rest train).
  int holdout_cycle = 10;
  /// Events with ids at or beyond these bounds are rejected (poisoned
  /// producer protection), counted as pipeline.ingest.rejected.
  int32_t max_users = 1 << 22;
  int32_t max_items = 1 << 22;
};

/// Outcome of one Apply() batch.
struct IngestStats {
  int64_t applied = 0;     ///< unique, in-range events accepted
  int64_t duplicates = 0;  ///< (user, item) already present, dropped
  int64_t rejected = 0;    ///< out-of-range ids, dropped + counted
  int32_t new_users = 0;   ///< id-space growth caused by this batch
  int32_t new_items = 0;
};

class DeltaIngestor {
 public:
  explicit DeltaIngestor(DeltaOptions options = {});

  /// Merges a batch of committed WAL records. Deterministic and
  /// idempotent: re-applying an already-seen record is a duplicate no-op,
  /// so a full replay after a crash converges to the same state.
  IngestStats Apply(const std::vector<WalRecord>& records);

  int32_t num_users() const { return num_users_; }
  int32_t num_items() const { return num_items_; }
  /// Unique events accepted so far (train + valid + test).
  int64_t accepted() const { return accepted_; }
  int64_t train_edges() const { return static_cast<int64_t>(train_.size()); }

  /// Training graph over the merged train slice, rebuilt on demand after
  /// mutating Apply() calls.
  const graph::BipartiteGraph& Graph();

  /// Â over the merged graph, rebuilt in place via
  /// NormalizedAdjacencySubsetInto (full edge set kept) with reused
  /// workspace + CSR storage. Valid until the next Apply().
  const sparse::CsrMatrix& MergeNormalizedAdjacency();

  /// Assembles the full Dataset (train graph + held-out ground truth) for
  /// a fine-tune run. Cold-start held-out entries are dropped by
  /// data::BuildDataset as usual.
  data::Dataset BuildDataset() const;

  /// CRC-32 over the canonical merged state (id space + every slice,
  /// sorted): equal digests <=> bit-identical merged state.
  uint32_t Digest() const;

 private:
  void Route(const data::Interaction& ev);

  DeltaOptions options_;
  std::unordered_set<int64_t> seen_;
  std::vector<data::Interaction> train_, valid_, test_;
  int32_t num_users_ = 0;
  int32_t num_items_ = 0;
  int64_t accepted_ = 0;

  graph::BipartiteGraph graph_;
  graph::BipartiteGraph::AdjacencyWorkspace ws_;
  sparse::CsrMatrix adjacency_;
  std::vector<int64_t> kept_scratch_;
  bool graph_dirty_ = true;
};

}  // namespace layergcn::pipeline

#endif  // LAYERGCN_PIPELINE_DELTA_H_
