#include "pipeline/warm_start.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <utility>

#include "core/layergcn.h"
#include "eval/evaluator.h"
#include "obs/metrics.h"
#include "train/checkpoint.h"
#include "train/parameter.h"
#include "util/logging.h"

namespace layergcn::pipeline {
namespace {

constexpr char kEmbeddingsName[] = "embeddings";

/// Copies row `src_r` of every state matrix of `src` into row `dst_r` of
/// `dst` (value + Adam moments; the gradient is transient).
void CarryRow(const train::Parameter& src, int64_t src_r,
              train::Parameter* dst, int64_t dst_r) {
  const int64_t dim = src.value.cols();
  std::memcpy(dst->value.row(dst_r), src.value.row(src_r),
              sizeof(float) * dim);
  std::memcpy(dst->adam_m.row(dst_r), src.adam_m.row(src_r),
              sizeof(float) * dim);
  std::memcpy(dst->adam_v.row(dst_r), src.adam_v.row(src_r),
              sizeof(float) * dim);
}

/// Restores the newest valid checkpoint of the previous run into the
/// grown model: split-aware row mapping (users first, items displaced by
/// the new user count), Adam moments carried, optimizer step restored.
util::Status CarryState(train::Recommender* model,
                        const data::Dataset& dataset,
                        const train::TrainConfig& config,
                        const WarmStartOptions& options) {
  const auto checkpoints =
      train::CheckpointManager::ListCheckpoints(options.prev_checkpoint_dir);
  if (checkpoints.empty()) {
    return util::NotFoundError("no checkpoint in " +
                               options.prev_checkpoint_dir);
  }

  const int64_t prev_nodes = static_cast<int64_t>(options.prev_num_users) +
                             options.prev_num_items;
  train::Parameter prev(kEmbeddingsName, prev_nodes, config.embedding_dim);
  train::TrainingState state;
  util::Status loaded = util::NotFoundError("no valid checkpoint");
  for (auto it = checkpoints.rbegin(); it != checkpoints.rend(); ++it) {
    loaded = train::LoadCheckpointV2(it->second, {&prev}, &state).status();
    if (loaded.ok()) break;
    LAYERGCN_LOG(kWarning) << "warm start skipping " << it->second << ": "
                           << loaded.ToString();
  }
  LAYERGCN_RETURN_IF_ERROR(loaded);

  train::Parameter* dst = nullptr;
  for (train::Parameter* p : model->Params()) {
    if (p->name == kEmbeddingsName) dst = p;
  }
  if (dst == nullptr || dst->value.cols() != config.embedding_dim) {
    return util::InternalError("model exposes no embedding table to warm");
  }

  const int32_t users = std::min<int32_t>(options.prev_num_users,
                                          dataset.num_users);
  const int32_t items = std::min<int32_t>(options.prev_num_items,
                                          dataset.num_items);
  for (int32_t u = 0; u < users; ++u) {
    CarryRow(prev, u, dst, u);
  }
  for (int32_t i = 0; i < items; ++i) {
    CarryRow(prev, static_cast<int64_t>(options.prev_num_users) + i, dst,
             static_cast<int64_t>(dataset.num_users) + i);
  }
  model->SetOptimizerSteps(state.optimizer_steps);
  LAYERGCN_LOG(kInfo) << "warm start carried " << users << " user + " << items
                      << " item rows (opt step " << state.optimizer_steps
                      << ") from " << options.prev_checkpoint_dir;
  return util::OkStatus();
}

/// `emb` zero-padded / truncated to `rows` x `cols` — the serving
/// snapshot's view of a grown id space (unknown rows score zero).
tensor::Matrix PadTo(const tensor::Matrix& emb, int64_t rows, int64_t cols) {
  tensor::Matrix out(rows, cols);
  const int64_t n = std::min(rows, emb.rows());
  if (n > 0 && emb.cols() == cols) {
    std::memcpy(out.data(), emb.data(), sizeof(float) * n * cols);
  }
  return out;
}

}  // namespace

std::string WarmStartTrainer::RunDir(const std::string& root,
                                     int64_t run_id) {
  char name[32];
  std::snprintf(name, sizeof(name), "run-%06" PRId64, run_id);
  return root + "/" + name;
}

util::StatusOr<WarmStartResult> WarmStartTrainer::Run(
    const data::Dataset& dataset, const serve::ModelSnapshot* baseline,
    const WarmStartOptions& options) {
  WarmStartResult result;
  result.checkpoint_dir = RunDir(options.checkpoint_root, options.run_id);
  std::error_code ec;
  std::filesystem::create_directories(result.checkpoint_dir, ec);
  if (ec) {
    return util::UnavailableError("cannot create " + result.checkpoint_dir +
                                  ": " + ec.message());
  }

  const bool can_warm = !options.prev_checkpoint_dir.empty() &&
                        options.prev_num_users > 0 &&
                        options.prev_num_items > 0;

  train::TrainConfig cfg = config_;
  cfg.max_epochs =
      can_warm ? options.fine_tune_epochs : options.bootstrap_epochs;
  cfg.max_epochs = std::max(1, cfg.max_epochs);
  // A bounded budget must never early-stop below itself, and the sampler
  // stream should differ between runs so repeated fine-tunes on an
  // unchanged graph do not replay identical batches.
  cfg.early_stop_patience = cfg.max_epochs;
  cfg.eval_every = 1;
  cfg.seed = config_.seed + static_cast<uint64_t>(options.run_id);

  train::TrainOptions topt;
  topt.validation_k = options.quality_k;
  topt.report_ks = {options.quality_k};
  topt.checkpoint_dir = result.checkpoint_dir;
  topt.checkpoint_every = 1;
  topt.keep_checkpoints = 2;
  topt.watchdog = true;
  topt.verbose = options.verbose;
  topt.warm_start = [&](train::Recommender* m) -> util::Status {
    if (!can_warm) {
      OBS_COUNT("pipeline.train.cold_starts", 1);
      return util::OkStatus();
    }
    const util::Status carried = CarryState(m, dataset, cfg, options);
    if (!carried.ok()) {
      // A missing/corrupt previous checkpoint degrades to a cold start —
      // the pipeline keeps moving on fresh Xavier rows.
      LAYERGCN_LOG(kWarning) << "warm start fell back to cold init: "
                             << carried.ToString();
      OBS_COUNT("pipeline.train.warm_start_fallbacks", 1);
      OBS_COUNT("pipeline.train.cold_starts", 1);
      return util::OkStatus();
    }
    result.warm_started = true;
    OBS_COUNT("pipeline.train.warm_starts", 1);
    return util::OkStatus();
  };

  auto model = std::make_unique<core::LayerGcn>();
  OBS_COUNT("pipeline.train.runs", 1);
  result.fit = train::FitRecommender(model.get(), dataset, cfg, topt);
  if (!result.fit.status.ok()) {
    return result.fit.status;
  }

  model->PrepareEval();
  const train::EmbeddingView view = model->GetEmbeddingView();
  if (!view.valid()) {
    return util::InternalError("fine-tuned model has no embedding view");
  }

  // Quality gate: both contenders rank the same held-out slice. The
  // serving snapshot is zero-padded onto the grown id space — users/items
  // it has never seen score zero for it, exactly the gap a fresh publish
  // is supposed to close.
  if (dataset.num_valid() > 0) {
    eval::Evaluator ev(&dataset, {options.quality_k});
    auto recall_of = [&](const eval::RankingMetrics& m) {
      const auto it = m.recall.find(options.quality_k);
      return it != m.recall.end() ? it->second : 0.0;
    };
    result.candidate_recall = recall_of(
        ev.Evaluate(*view.user, *view.item, eval::EvalSplit::kValidation));
    if (baseline != nullptr && baseline->dim() == view.user->cols()) {
      const tensor::Matrix pu =
          PadTo(baseline->user_emb(), dataset.num_users, baseline->dim());
      const tensor::Matrix pi =
          PadTo(baseline->item_emb(), dataset.num_items, baseline->dim());
      result.baseline_recall =
          recall_of(ev.Evaluate(pu, pi, eval::EvalSplit::kValidation));
    }
  }
  result.gate_passed =
      result.candidate_recall + 1e-12 >=
      result.baseline_recall * (1.0 - options.max_quality_drop);
  if (!result.gate_passed) {
    OBS_COUNT("pipeline.train.quality_gate_failures", 1);
    LAYERGCN_LOG(kWarning) << "quality gate refused candidate: R@"
                           << options.quality_k << " "
                           << result.candidate_recall << " vs serving "
                           << result.baseline_recall;
  }
  OBS_GAUGE("pipeline.train.candidate_recall", result.candidate_recall);
  OBS_GAUGE("pipeline.train.baseline_recall", result.baseline_recall);

  result.model = std::move(model);
  return result;
}

}  // namespace layergcn::pipeline
