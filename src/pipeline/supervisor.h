// PipelineSupervisor: drives ingest → fine-tune → publish on cadences.
//
// The supervisor owns the pipeline's durable state and its failure
// policy. Durability has exactly two roots — the WAL (every committed
// event) and the manifest (a tiny CRC-guarded file recording the last
// completed fine-tune run id, the id space it was trained at, the
// last published snapshot version, and the event count it consumed).
// Everything else (the merged graph, the in-memory dataset) is a pure
// replay of those roots, so Start() after a crash — or after SIGKILL at
// any instruction — reconstructs the identical state: WAL recovery
// truncates torn tails, the full committed sequence re-feeds the
// DeltaIngestor, and a corrupt/missing manifest degrades to a cold start
// rather than an abort.
//
// Failure policy per stage (train / publish): a failing stage is retried
// on the next cycle; max_stage_failures *consecutive* failures exhaust
// the restart budget and the supervisor halts with the structured
// util::Status of the last failure (pipeline.supervisor.halted gauge,
// pipeline.stage.*_failures counters). Halting stops state mutation only
// — the already-published snapshot keeps serving, which is the designed
// degraded mode. A stage that overruns stage_deadline_us counts as a
// failure (DeadlineExceeded) even when its work succeeded, so a wedged
// stage surfaces in health before it wedges the whole loop.

#ifndef LAYERGCN_PIPELINE_SUPERVISOR_H_
#define LAYERGCN_PIPELINE_SUPERVISOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "pipeline/delta.h"
#include "pipeline/publisher.h"
#include "pipeline/wal.h"
#include "pipeline/warm_start.h"
#include "serve/snapshot.h"
#include "train/recommender.h"
#include "util/status.h"

namespace layergcn::pipeline {

/// The durable pipeline position: what recovery needs that the WAL alone
/// cannot tell. Saved atomically; a load failure means cold start, never
/// an abort.
struct PipelineManifest {
  int64_t run_id = 0;          ///< last completed fine-tune run (0 = none)
  int32_t num_users = 0;       ///< id space at that run's checkpoints
  int32_t num_items = 0;
  int64_t version = 0;         ///< last successfully published snapshot
  int64_t trained_events = 0;  ///< accepted events consumed by that run

  static util::StatusOr<PipelineManifest> Load(const std::string& path);
  util::Status Save(const std::string& path) const;
};

struct SupervisorOptions {
  /// Pipeline root: wal/, ckpt/, manifest.txt live here.
  std::string root_dir;
  /// Snapshot directory the serving SnapshotStore watches.
  std::string snapshot_dir;

  int64_t wal_segment_bytes = 1 << 20;
  /// Fine-tune once this many new accepted events are waiting.
  int64_t min_train_events = 200;
  /// Wall-clock bound per stage; 0 disables the check.
  uint64_t stage_deadline_us = 0;
  /// Consecutive failures per stage before the supervisor halts.
  int max_stage_failures = 3;
  /// Delete WAL segments fully covered by a successful publish (the
  /// events are baked into the served snapshot and the manifest records
  /// the consumed count). Off by default: replay-everything is the
  /// simplest recovery story; long-running deployments turn this on to
  /// bound disk growth.
  bool gc_covered_wal_segments = false;

  train::TrainConfig train_config;
  /// Budget/gate knobs; checkpoint_root, run_id and prev_* are managed by
  /// the supervisor.
  WarmStartOptions warm;
  PublisherOptions publish;
  DeltaOptions delta;
};

class PipelineSupervisor {
 public:
  /// `store` must outlive the supervisor; it is the serving store over
  /// options.snapshot_dir.
  PipelineSupervisor(SupervisorOptions options, serve::SnapshotStore* store);
  ~PipelineSupervisor();

  /// Recovery: manifest, WAL open (torn tails repaired), full replay of
  /// the committed sequence into the ingestor. Idempotent per process.
  util::Status Start();

  /// Producer entry: appends `events` and commits them durably, then
  /// merges them. A torn commit triggers the in-process recovery drill —
  /// re-open, truncate, re-append the lost suffix — so the committed
  /// sequence (and therefore the merged state) is exactly what an
  /// unfaulted run would have produced. When the drill itself cannot
  /// restore durability (e.g. the disk is full — wal.enospc), the
  /// supervisor halts state mutation and degrades to serving-only: the
  /// published snapshot keeps answering, further Ingest()/RunCycle()
  /// calls return the halt reason, and nothing crashes.
  util::Status Ingest(const std::vector<WalRecord>& events);

  /// One supervision cycle: fine-tune when enough events are pending,
  /// publish when the quality gate passes. Returns the stage error (after
  /// recording it against the restart budget) or OK.
  util::Status RunCycle();

  // --- Introspection -----------------------------------------------------
  struct Counters {
    int64_t ingest_batches = 0;
    int64_t wal_reopens = 0;
    int64_t runs_completed = 0;
    int64_t gate_refusals = 0;
    int64_t train_failures = 0;
    int64_t publishes = 0;
    int64_t publish_failures = 0;
    int64_t deadline_overruns = 0;
  };
  const Counters& counters() const { return counters_; }

  /// True once a stage exhausted its restart budget; serving continues,
  /// state mutation stops. status() carries the reason.
  bool halted() const { return halted_; }
  util::Status status() const { return last_error_; }

  const PipelineManifest& manifest() const { return manifest_; }
  const WalRecoveryStats& wal_recovery() const { return wal_recovery_; }
  int64_t events_committed() const {
    return wal_ != nullptr ? wal_->committed_records() : 0;
  }
  int64_t events_pending_train() const {
    return ingestor_.accepted() - manifest_.trained_events;
  }
  DeltaIngestor& ingestor() { return ingestor_; }

 private:
  util::Status TrainAndMaybePublish();
  /// Records a stage outcome against the restart budget; returns `st`.
  util::Status StageResult(const char* stage, int* consecutive,
                           util::Status st);
  /// Irrecoverable WAL failure: stop mutating state, keep serving.
  util::Status HaltIngestion(util::Status cause);

  SupervisorOptions options_;
  serve::SnapshotStore* const store_;
  std::string manifest_path_;

  std::unique_ptr<InteractionWal> wal_;
  WalRecoveryStats wal_recovery_;
  DeltaIngestor ingestor_;
  std::unique_ptr<SnapshotPublisher> publisher_;
  PipelineManifest manifest_;

  Counters counters_;
  int consecutive_train_failures_ = 0;
  int consecutive_publish_failures_ = 0;
  bool halted_ = false;
  bool started_ = false;
  util::Status last_error_;
};

}  // namespace layergcn::pipeline

#endif  // LAYERGCN_PIPELINE_SUPERVISOR_H_
