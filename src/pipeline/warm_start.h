// WarmStartTrainer: bounded fine-tuning from the latest checkpoint-v2.
//
// A fine-tune run builds a fresh LayerGCN over the grown id space, then —
// instead of training from scratch — carries the previous run's state row
// by row out of its newest valid checkpoint: surviving user rows map to
// [0, prev_users), surviving item rows shift from [prev_users, ...) to
// [num_users, ...) (the unified node space puts users first, so id growth
// displaces the item block), and both the parameter values and the Adam
// moments ride along. Rows born since the last run keep their fresh Xavier
// init. The optimizer step counter is restored so bias correction
// continues where it left off.
//
// Safety rails:
//  - the trainer's divergence watchdog runs as usual (NaN/Inf loss →
//    rollback to this run's last checkpoint, bounded budget);
//  - a quality gate evaluates Recall@K of the candidate on the current
//    held-out slice against the *serving snapshot* (zero-padded to the
//    grown id space so both models rank the same users) and refuses the
//    candidate when it regresses by more than max_quality_drop —
//    publishing a stale-but-good model beats publishing a fresh-but-worse
//    one (counted as pipeline.train.quality_gate_failures).
//
// Checkpoints of run N live in <checkpoint_root>/run-NNNNNN; run N+1 warm
// starts from run N's directory, so shapes never mix inside one manager's
// rotation window.

#ifndef LAYERGCN_PIPELINE_WARM_START_H_
#define LAYERGCN_PIPELINE_WARM_START_H_

#include <cstdint>
#include <memory>
#include <string>

#include "data/dataset.h"
#include "serve/snapshot.h"
#include "train/recommender.h"
#include "train/trainer.h"
#include "util/status.h"

namespace layergcn::pipeline {

struct WarmStartOptions {
  /// Parent of the per-run checkpoint directories.
  std::string checkpoint_root;
  /// This run's id (monotone across fine-tunes, from the manifest).
  int64_t run_id = 1;
  /// Previous run's checkpoint directory; empty = cold start.
  std::string prev_checkpoint_dir;
  /// Id space the previous checkpoint was written at (row mapping).
  int32_t prev_num_users = 0;
  int32_t prev_num_items = 0;

  /// Epoch budget when warm starting / when cold starting.
  int fine_tune_epochs = 2;
  int bootstrap_epochs = 4;

  /// Quality gate: candidate Recall@quality_k on the validation slice may
  /// undercut the serving snapshot's by at most this relative fraction.
  int quality_k = 20;
  double max_quality_drop = 0.05;

  bool verbose = false;
};

struct WarmStartResult {
  /// The fine-tuned candidate, PrepareEval()ed (embedding view valid).
  std::unique_ptr<train::Recommender> model;
  train::TrainResult fit;
  /// True when previous state was actually carried (false = cold start).
  bool warm_started = false;
  /// Quality-gate verdict; the caller must not publish when false.
  bool gate_passed = false;
  double candidate_recall = 0.0;
  double baseline_recall = 0.0;
  /// Where this run checkpointed (becomes prev_checkpoint_dir next run).
  std::string checkpoint_dir;
};

class WarmStartTrainer {
 public:
  explicit WarmStartTrainer(train::TrainConfig config)
      : config_(std::move(config)) {}

  /// Runs one bounded fine-tune over `dataset`. `baseline` is the
  /// currently served snapshot (nullptr before the first publish — the
  /// gate then passes trivially). Training failures (watchdog budget
  /// exhausted, checkpoint I/O) surface as the inner status; a gate
  /// refusal is NOT an error — check WarmStartResult::gate_passed.
  util::StatusOr<WarmStartResult> Run(const data::Dataset& dataset,
                                      const serve::ModelSnapshot* baseline,
                                      const WarmStartOptions& options);

  /// The per-run checkpoint directory naming scheme.
  static std::string RunDir(const std::string& root, int64_t run_id);

 private:
  train::TrainConfig config_;
};

}  // namespace layergcn::pipeline

#endif  // LAYERGCN_PIPELINE_WARM_START_H_
