#include "pipeline/publisher.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>
#include <utility>

#include "obs/metrics.h"
#include "train/checkpoint.h"
#include "util/fault_injection.h"
#include "util/logging.h"

namespace layergcn::pipeline {

SnapshotPublisher::SnapshotPublisher(serve::SnapshotStore* store,
                                     PublisherOptions options)
    : store_(store), options_(std::move(options)), jitter_rng_(options_.seed) {}

util::Status SnapshotPublisher::PublishOnce(const std::string& staging,
                                            int64_t version) {
  // The staged file already passed SaveServingExport; prove it parses end
  // to end (every section CRC) before it can become visible.
  LAYERGCN_RETURN_IF_ERROR(train::ValidateCheckpoint(staging));

  const std::string final_path =
      serve::SnapshotStore::SnapshotPath(store_->dir(), version);
  if (util::fault::Fire("publish.torn_rename")) {
    // Simulated crash inside the rotate step: a prefix of the export lands
    // under the final name. The store's newest-valid fallback must keep
    // readers on the previous snapshot until a retry renames over it.
    std::ifstream in(staging, std::ios::binary | std::ios::ate);
    const std::streamsize size = in.tellg();
    std::string image(static_cast<size_t>(std::max<std::streamsize>(size, 0)),
                      '\0');
    in.seekg(0);
    in.read(image.data(), static_cast<std::streamsize>(image.size()));
    std::ofstream torn(final_path, std::ios::binary | std::ios::trunc);
    torn.write(image.data(), static_cast<std::streamsize>(image.size() * 3 / 5));
    std::remove(staging.c_str());
    return util::DataLossError("simulated torn rename onto " + final_path);
  }
  if (std::rename(staging.c_str(), final_path.c_str()) != 0) {
    return util::UnavailableError("cannot rename " + staging + " to " +
                                  final_path);
  }

  LAYERGCN_RETURN_IF_ERROR(store_->Reload());
  const auto current = store_->current();
  if (current == nullptr || current->version() != version) {
    // Reload picked an older (or no) snapshot: what we just rotated in did
    // not survive the store's own validation.
    return util::DataLossError(
        "store is not serving the published version " +
        std::to_string(version));
  }
  return util::OkStatus();
}

util::Status SnapshotPublisher::Publish(
    const train::EmbeddingView& view,
    const std::vector<std::vector<int32_t>>& user_history, int64_t version) {
  if (!view.valid()) {
    return util::InvalidArgumentError("publish with an invalid embedding view");
  }
  if (static_cast<int64_t>(user_history.size()) != view.user->rows()) {
    return util::InvalidArgumentError(
        "publish history size does not match the user count");
  }

  train::ServingExport ex;
  ex.version = version;
  ex.user_emb = *view.user;
  ex.item_emb = *view.item;
  ex.user_history = user_history;
  ex.write_int8 = options_.write_int8;
  ex.write_bf16 = options_.write_bf16;

  char staged_name[40];
  std::snprintf(staged_name, sizeof(staged_name), "pub-%06" PRId64 ".staging",
                version);
  const std::string staging = store_->dir() + "/" + staged_name;

  std::error_code ec;
  std::filesystem::create_directories(store_->dir(), ec);

  util::Status last = util::OkStatus();
  uint64_t backoff = options_.backoff_base_us;
  for (int attempt = 0; attempt <= options_.max_retries; ++attempt) {
    if (attempt > 0) {
      OBS_COUNT("pipeline.publish.retries", 1);
      uint64_t delay = backoff;
      if (options_.backoff_jitter > 0) {
        const double u = jitter_rng_.NextDouble() * 2.0 - 1.0;
        delay = static_cast<uint64_t>(
            static_cast<double>(delay) * (1.0 + options_.backoff_jitter * u));
      }
      std::this_thread::sleep_for(std::chrono::microseconds(delay));
      backoff = std::min(backoff * 2, options_.backoff_max_us);
    }
    OBS_COUNT("pipeline.publish.attempts", 1);

    last = train::SaveServingExport(staging, ex);
    if (last.ok()) {
      last = PublishOnce(staging, version);
    }
    if (last.ok()) {
      last_published_version_ = version;
      OBS_COUNT("pipeline.publish.success", 1);
      OBS_GAUGE("pipeline.publish.last_version", version);
      Prune();
      return util::OkStatus();
    }
    LAYERGCN_LOG(kWarning) << "publish attempt " << (attempt + 1) << "/"
                           << (options_.max_retries + 1) << " of version "
                           << version << " failed: " << last.ToString();
  }

  std::remove(staging.c_str());
  OBS_COUNT("pipeline.publish.failures", 1);
  return last;
}

void SnapshotPublisher::Prune() const {
  // Retention lives in the store (it owns the "never prune the serving
  // version" invariant and the valid-only quota); the publisher just
  // mirrors the count into its own namespace for pipeline dashboards.
  const int64_t pruned = store_->Retain(options_.keep_snapshots);
  if (pruned > 0) OBS_COUNT("pipeline.publish.pruned", pruned);
}

}  // namespace layergcn::pipeline
