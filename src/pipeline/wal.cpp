#include "pipeline/wal.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

#include "obs/metrics.h"
#include "util/crc32.h"
#include "util/fault_injection.h"
#include "util/logging.h"

namespace layergcn::pipeline {
namespace {

constexpr char kMagic[4] = {'L', 'W', 'A', 'L'};
constexpr uint32_t kVersion = 1;
constexpr size_t kHeaderBytes = 4 + 4 + 8;   // magic | version | base_seq
constexpr uint32_t kPayloadBytes = 4 + 4 + 8;  // user | item | timestamp
constexpr size_t kFrameBytes = 4 + kPayloadBytes + 4;  // len | payload | crc
// A frame length beyond this cannot be trusted — treat as a torn tail.
constexpr uint32_t kMaxPayload = 1 << 20;

template <typename T>
void AppendPod(std::string* out, const T& v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T ReadPod(const char* p) {
  T v;
  std::memcpy(&v, p, sizeof(T));
  return v;
}

std::string SegmentHeader(int64_t base_seq) {
  std::string h;
  h.append(kMagic, sizeof(kMagic));
  AppendPod(&h, kVersion);
  AppendPod(&h, static_cast<uint64_t>(base_seq));
  return h;
}

void EncodeRecord(std::string* out, const WalRecord& r) {
  std::string payload;
  payload.reserve(kPayloadBytes);
  AppendPod(&payload, r.user);
  AppendPod(&payload, r.item);
  AppendPod(&payload, r.timestamp);
  AppendPod(out, static_cast<uint32_t>(payload.size()));
  out->append(payload);
  AppendPod(out, util::Crc32(payload.data(), payload.size()));
}

/// Reads the whole segment into memory, applying the read-side fault
/// points (simulated disk damage) to the image, never the parser state.
util::Status LoadSegmentImage(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in.good()) {
    return util::NotFoundError("cannot open WAL segment " + path);
  }
  const std::streamsize size = in.tellg();
  out->resize(static_cast<size_t>(size));
  in.seekg(0);
  if (size > 0) in.read(out->data(), size);
  if (!in.good()) {
    return util::UnavailableError("cannot read WAL segment " + path);
  }
  if (util::fault::Fire("wal.short_read")) {
    out->resize(out->size() / 2);
  }
  if (util::fault::Fire("wal.bit_flip") && out->size() > kHeaderBytes + 6) {
    // Land the flip inside a payload so the frame stays complete but its
    // CRC no longer matches (the skip-and-count path, not the torn path).
    (*out)[kHeaderBytes + 6] ^= 0x10;
  }
  return util::OkStatus();
}

struct ParsedSegment {
  std::vector<WalRecord> records;
  size_t committed_bytes = 0;  // offset up to which the file is well-formed
  int64_t corrupt = 0;         // complete frames failing CRC / shape
  bool torn = false;           // trailing bytes past committed_bytes
  bool header_ok = false;
};

ParsedSegment ParseSegment(const std::string& image) {
  ParsedSegment p;
  if (image.size() < kHeaderBytes ||
      std::memcmp(image.data(), kMagic, sizeof(kMagic)) != 0 ||
      ReadPod<uint32_t>(image.data() + 4) != kVersion) {
    p.torn = !image.empty();
    return p;
  }
  p.header_ok = true;
  size_t off = kHeaderBytes;
  p.committed_bytes = off;
  while (off < image.size()) {
    if (off + 4 > image.size()) {
      p.torn = true;
      break;
    }
    const uint32_t len = ReadPod<uint32_t>(image.data() + off);
    if (len == 0 || len > kMaxPayload) {
      // An implausible length means the frame boundary itself is damaged;
      // nothing past this point can be trusted.
      p.torn = true;
      break;
    }
    if (off + 4 + len + 4 > image.size()) {
      p.torn = true;
      break;
    }
    const char* payload = image.data() + off + 4;
    const uint32_t stored = ReadPod<uint32_t>(image.data() + off + 4 + len);
    off += 4 + len + 4;
    p.committed_bytes = off;
    if (util::Crc32(payload, len) != stored || len != kPayloadBytes) {
      ++p.corrupt;
      continue;
    }
    WalRecord r;
    r.user = ReadPod<int32_t>(payload);
    r.item = ReadPod<int32_t>(payload + 4);
    r.timestamp = ReadPod<int64_t>(payload + 8);
    p.records.push_back(r);
  }
  return p;
}

util::Status SyncedWrite(const std::string& path, const char* data,
                         size_t len, bool append) {
#if defined(__unix__) || defined(__APPLE__)
  const int flags = O_WRONLY | O_CREAT | (append ? O_APPEND : O_TRUNC);
  const int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) {
    return util::UnavailableError("cannot open WAL segment " + path);
  }
  size_t done = 0;
  while (done < len) {
    const ssize_t n = ::write(fd, data + done, len - done);
    if (n <= 0) {
      ::close(fd);
      return util::UnavailableError("write failure on " + path);
    }
    done += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    return util::UnavailableError("fsync failure on " + path);
  }
  ::close(fd);
#else
  std::ofstream out(path, std::ios::binary |
                              (append ? std::ios::app : std::ios::trunc));
  out.write(data, static_cast<std::streamsize>(len));
  out.flush();
  if (!out.good()) {
    return util::UnavailableError("write failure on " + path);
  }
#endif
  return util::OkStatus();
}

util::Status TruncateFile(const std::string& path, size_t len) {
  std::error_code ec;
  std::filesystem::resize_file(path, len, ec);
  if (ec) {
    return util::UnavailableError("cannot truncate " + path + ": " +
                                  ec.message());
  }
  return util::OkStatus();
}

}  // namespace

std::string InteractionWal::SegmentPath(const std::string& dir,
                                        int64_t index) {
  char name[32];
  std::snprintf(name, sizeof(name), "wal-%06" PRId64 ".log", index);
  return dir + "/" + name;
}

std::vector<std::pair<int64_t, std::string>> InteractionWal::ListSegments(
    const std::string& dir) {
  std::vector<std::pair<int64_t, std::string>> out;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    int64_t index = -1;
    if (std::sscanf(name.c_str(), "wal-%06" PRId64 ".log", &index) == 1 &&
        index >= 0 && name.size() == std::strlen("wal-000000.log")) {
      out.emplace_back(index, entry.path().string());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

util::StatusOr<std::unique_ptr<InteractionWal>> InteractionWal::Open(
    WalOptions options) {
  std::error_code ec;
  std::filesystem::create_directories(options.dir, ec);
  if (ec) {
    return util::UnavailableError("cannot create WAL dir " + options.dir +
                                  ": " + ec.message());
  }

  std::unique_ptr<InteractionWal> wal(new InteractionWal());
  wal->options_ = std::move(options);

  const auto segments = ListSegments(wal->options_.dir);
  for (size_t i = 0; i < segments.size(); ++i) {
    const std::string& path = segments[i].second;
    std::string image;
    LAYERGCN_RETURN_IF_ERROR(LoadSegmentImage(path, &image));
    ParsedSegment p = ParseSegment(image);
    ++wal->recovery_.segments;
    wal->recovery_.records += static_cast<int64_t>(p.records.size());
    wal->recovery_.corrupt_records += p.corrupt;
    wal->recovery_.bytes += static_cast<int64_t>(p.committed_bytes);
    if (p.torn) {
      // Physically cut the tail so the writer can extend the segment and
      // a later reader never re-walks the damage.
      ++wal->recovery_.torn_tails;
      if (!p.header_ok) {
        // Even the header is gone; reinitialize the segment in place.
        const std::string header = SegmentHeader(
            wal->committed_records_ + static_cast<int64_t>(p.records.size()));
        LAYERGCN_RETURN_IF_ERROR(
            SyncedWrite(path, header.data(), header.size(), /*append=*/false));
        p.committed_bytes = header.size();
      } else {
        LAYERGCN_RETURN_IF_ERROR(TruncateFile(path, p.committed_bytes));
      }
      LAYERGCN_LOG(kWarning)
          << "WAL recovery truncated torn tail of " << path << " at byte "
          << p.committed_bytes << " (" << p.records.size()
          << " records survive)";
    }
    wal->committed_records_ += static_cast<int64_t>(p.records.size());
    if (i + 1 == segments.size()) {
      wal->active_index_ = segments[i].first;
      wal->active_path_ = path;
      wal->active_bytes_ = static_cast<int64_t>(p.committed_bytes);
    }
  }

  OBS_COUNT("pipeline.wal.recovered_records", wal->recovery_.records);
  OBS_COUNT("pipeline.wal.corrupt_records", wal->recovery_.corrupt_records);
  OBS_COUNT("pipeline.wal.torn_tails", wal->recovery_.torn_tails);

  if (segments.empty()) {
    LAYERGCN_RETURN_IF_ERROR(wal->StartSegment(0, 0));
  } else if (wal->active_bytes_ >= wal->options_.segment_bytes) {
    LAYERGCN_RETURN_IF_ERROR(wal->StartSegment(wal->active_index_ + 1,
                                               wal->committed_records_));
  }
  return wal;
}

InteractionWal::~InteractionWal() = default;

util::Status InteractionWal::StartSegment(int64_t index, int64_t base_seq) {
  const std::string path = SegmentPath(options_.dir, index);
  const std::string tmp = path + ".tmp";
  const std::string header = SegmentHeader(base_seq);
  LAYERGCN_RETURN_IF_ERROR(
      SyncedWrite(tmp, header.data(), header.size(), /*append=*/false));
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return util::UnavailableError("cannot rename " + tmp + " to " + path);
  }
  active_index_ = index;
  active_path_ = path;
  active_bytes_ = static_cast<int64_t>(header.size());
  OBS_COUNT("pipeline.wal.rotations", 1);
  return util::OkStatus();
}

util::Status InteractionWal::Append(const WalRecord& record) {
  if (poisoned_) {
    return util::FailedPreconditionError(
        "WAL writer poisoned by a failed commit; re-Open() to recover");
  }
  pending_.push_back(record);
  OBS_COUNT("pipeline.wal.appends", 1);
  if (options_.auto_commit_records > 0 &&
      static_cast<int64_t>(pending_.size()) >= options_.auto_commit_records) {
    return Commit();
  }
  return util::OkStatus();
}

util::Status InteractionWal::Commit() {
  if (poisoned_) {
    return util::FailedPreconditionError(
        "WAL writer poisoned by a failed commit; re-Open() to recover");
  }
  if (pending_.empty()) return util::OkStatus();

  std::string batch;
  batch.reserve(pending_.size() * kFrameBytes);
  for (const WalRecord& r : pending_) EncodeRecord(&batch, r);

  if (util::fault::Fire("wal.enospc")) {
    // Simulated full disk: the write never starts, so unlike a torn write
    // nothing partial lands — but the handle is still poisoned because a
    // real ENOSPC leaves the writer unable to promise durability. Owners
    // re-Open() to retry; if the disk is still full they must degrade to
    // serving-only rather than crash.
    poisoned_ = true;
    return util::ResourceExhaustedError(
        "no space left on device (injected) writing " + active_path_);
  }
  if (util::fault::Fire("wal.torn_write")) {
    // Simulated crash inside the commit window: a prefix of the batch —
    // cut mid-frame (the +7 keeps the cut off the 24-byte frame grid) —
    // reaches the disk and the process "dies". The handle is poisoned so
    // the owner must go through recovery like a restarted process would.
    const size_t torn =
        std::min(batch.size() * 2 / 5 + 7, batch.size() - 1);
    (void)SyncedWrite(active_path_, batch.data(), torn, /*append=*/true);
    poisoned_ = true;
    return util::DataLossError("simulated torn WAL write on " + active_path_);
  }

  const util::Status st =
      SyncedWrite(active_path_, batch.data(), batch.size(), /*append=*/true);
  if (!st.ok()) {
    // The batch may be partially on disk; only recovery can tell.
    poisoned_ = true;
    return st;
  }
  active_bytes_ += static_cast<int64_t>(batch.size());
  committed_records_ += static_cast<int64_t>(pending_.size());
  OBS_COUNT("pipeline.wal.records_committed", pending_.size());
  OBS_COUNT("pipeline.wal.commits", 1);
  pending_.clear();

  if (active_bytes_ >= options_.segment_bytes) {
    return StartSegment(active_index_ + 1, committed_records_);
  }
  return util::OkStatus();
}

int64_t InteractionWal::GcCoveredSegments(int64_t covered_seq) {
  const auto segments = ListSegments(options_.dir);
  int64_t removed = 0;
  // A segment is fully covered when its successor's base_seq (== the
  // global record count when the successor was started) is at or below
  // the covered position. The last listed segment is the active one and
  // is never a candidate.
  for (size_t i = 0; i + 1 < segments.size(); ++i) {
    if (segments[i].second == active_path_) continue;
    std::ifstream in(segments[i + 1].second, std::ios::binary);
    char header[kHeaderBytes];
    in.read(header, sizeof(header));
    if (!in.good() || std::memcmp(header, kMagic, sizeof(kMagic)) != 0 ||
        ReadPod<uint32_t>(header + 4) != kVersion) {
      // Successor header unreadable: cannot prove coverage, keep the
      // segment (recovery will repair the successor on the next Open).
      continue;
    }
    const int64_t next_base =
        static_cast<int64_t>(ReadPod<uint64_t>(header + 8));
    if (next_base > covered_seq) continue;
    if (std::remove(segments[i].second.c_str()) == 0) {
      ++removed;
      OBS_COUNT("pipeline.wal.segments_gced", 1);
      LAYERGCN_LOG(kInfo) << "WAL GC removed covered segment "
                          << segments[i].second << " (records < " << next_base
                          << " are published)";
    }
  }
  return removed;
}

util::StatusOr<std::vector<WalRecord>> InteractionWal::ReadAll(
    const std::string& dir, WalRecoveryStats* stats) {
  std::vector<WalRecord> out;
  WalRecoveryStats local;
  for (const auto& [index, path] : ListSegments(dir)) {
    std::string image;
    LAYERGCN_RETURN_IF_ERROR(LoadSegmentImage(path, &image));
    const ParsedSegment p = ParseSegment(image);
    ++local.segments;
    local.records += static_cast<int64_t>(p.records.size());
    local.corrupt_records += p.corrupt;
    local.torn_tails += p.torn ? 1 : 0;
    local.bytes += static_cast<int64_t>(p.committed_bytes);
    out.insert(out.end(), p.records.begin(), p.records.end());
  }
  if (stats != nullptr) *stats = local;
  return out;
}

}  // namespace layergcn::pipeline
