// SnapshotPublisher: validate → export → rotate into the SnapshotStore.
//
// Publishing is the only pipeline stage that touches the serving path, so
// it is built never to damage it:
//
//  1. The export is written to a staging file (`pub-NNNNNN.staging`, a
//     name SnapshotStore ignores) with the checkpoint writer's own
//     atomic-temp-rename discipline.
//  2. The staging file is re-validated end to end (header, sections,
//     CRCs) before anything visible happens.
//  3. The staging file is renamed to snap-NNNNNN.lgcn — one atomic
//     directory operation — and the store Reload()s; the publish only
//     counts once the store confirms it is serving exactly that version.
//
// Every step is retried with bounded exponential backoff + deterministic
// jitter (pipeline.publish.retries). When the budget is exhausted the
// publisher reports the error and cleans its staging file — the previous
// snapshot keeps serving untouched; callers degrade health, never the
// serving path (pipeline.publish.failures).
//
// Fault point `publish.torn_rename` simulates a crash inside step 3: a
// prefix of the export lands under the final snap- name. Recovery is the
// ordinary retry: the next attempt re-stages and renames over the torn
// file, while SnapshotStore's newest-valid fallback keeps readers off it
// in the meantime.

#ifndef LAYERGCN_PIPELINE_PUBLISHER_H_
#define LAYERGCN_PIPELINE_PUBLISHER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "serve/snapshot.h"
#include "train/recommender.h"
#include "util/rng.h"
#include "util/status.h"

namespace layergcn::pipeline {

struct PublisherOptions {
  /// Publish attempts per snapshot = 1 + max_retries.
  int max_retries = 3;
  /// First backoff; doubles per retry, capped at backoff_max_us.
  uint64_t backoff_base_us = 20'000;
  uint64_t backoff_max_us = 2'000'000;
  /// Uniform jitter fraction applied to each backoff (0 disables).
  double backoff_jitter = 0.25;
  /// Jitter stream seed (deterministic backoff schedules in tests).
  uint64_t seed = 0x9e3779b97f4a7c15ull;
  /// Snapshot files kept in the store directory (the serving version is
  /// never pruned regardless).
  int keep_snapshots = 4;
  /// Quantized sections written alongside the f32 reference.
  bool write_int8 = true;
  bool write_bf16 = true;
};

class SnapshotPublisher {
 public:
  /// `store` must outlive the publisher and be the store serving
  /// store->dir().
  SnapshotPublisher(serve::SnapshotStore* store, PublisherOptions options);

  /// Publishes `version` built from the model's embedding view and the
  /// per-user histories (sorted exclusion lists, one per user row).
  /// Blocks through the retry schedule; on OK the store is serving
  /// exactly `version`. On error the previous snapshot is still serving
  /// and no staging litter remains.
  util::Status Publish(const train::EmbeddingView& view,
                       const std::vector<std::vector<int32_t>>& user_history,
                       int64_t version);

  int64_t last_published_version() const { return last_published_version_; }

 private:
  util::Status PublishOnce(const std::string& staging, int64_t version);
  void Prune() const;

  serve::SnapshotStore* const store_;
  const PublisherOptions options_;
  util::Rng jitter_rng_;
  int64_t last_published_version_ = 0;
};

}  // namespace layergcn::pipeline

#endif  // LAYERGCN_PIPELINE_PUBLISHER_H_
