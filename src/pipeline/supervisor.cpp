#include "pipeline/supervisor.h"

#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string_view>
#include <utility>

#include "obs/metrics.h"
#include "obs/obs.h"
#include "util/crc32.h"
#include "util/logging.h"
#include "util/strings.h"

namespace layergcn::pipeline {
namespace {

constexpr char kManifestMagic[] = "LGCN-PIPE v1";

}  // namespace

util::StatusOr<PipelineManifest> PipelineManifest::Load(
    const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) {
    return util::NotFoundError("no manifest at " + path);
  }
  std::string body, line;
  PipelineManifest m;
  uint32_t stored_crc = 0;
  bool have_crc = false;
  while (std::getline(in, line)) {
    unsigned crc_val = 0;
    if (std::sscanf(line.c_str(), "crc=%x", &crc_val) == 1) {
      stored_crc = crc_val;
      have_crc = true;
      break;
    }
    body += line;
    body += '\n';
    int64_t v64 = 0;
    if (std::sscanf(line.c_str(), "run_id=%" PRId64, &v64) == 1) m.run_id = v64;
    if (std::sscanf(line.c_str(), "users=%" PRId64, &v64) == 1) {
      m.num_users = static_cast<int32_t>(v64);
    }
    if (std::sscanf(line.c_str(), "items=%" PRId64, &v64) == 1) {
      m.num_items = static_cast<int32_t>(v64);
    }
    if (std::sscanf(line.c_str(), "version=%" PRId64, &v64) == 1) {
      m.version = v64;
    }
    if (std::sscanf(line.c_str(), "trained_events=%" PRId64, &v64) == 1) {
      m.trained_events = v64;
    }
  }
  if (body.rfind(kManifestMagic, 0) != 0) {
    return util::DataLossError(path + ": bad manifest magic");
  }
  if (!have_crc || util::Crc32(body.data(), body.size()) != stored_crc) {
    return util::DataLossError(path + ": manifest CRC mismatch");
  }
  return m;
}

util::Status PipelineManifest::Save(const std::string& path) const {
  std::ostringstream body;
  body << kManifestMagic << '\n'
       << "run_id=" << run_id << '\n'
       << "users=" << num_users << '\n'
       << "items=" << num_items << '\n'
       << "version=" << version << '\n'
       << "trained_events=" << trained_events << '\n';
  const std::string s = body.str();
  char crc_line[32];
  std::snprintf(crc_line, sizeof(crc_line), "crc=%08x\n",
                util::Crc32(s.data(), s.size()));

  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    out << s << crc_line;
    out.flush();
    if (!out.good()) {
      std::remove(tmp.c_str());
      return util::UnavailableError("cannot write manifest " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return util::UnavailableError("cannot rename manifest into " + path);
  }
  return util::OkStatus();
}

PipelineSupervisor::PipelineSupervisor(SupervisorOptions options,
                                       serve::SnapshotStore* store)
    : options_(std::move(options)),
      store_(store),
      manifest_path_(options_.root_dir + "/manifest.txt"),
      ingestor_(options_.delta) {
  publisher_ =
      std::make_unique<SnapshotPublisher>(store_, options_.publish);
}

PipelineSupervisor::~PipelineSupervisor() = default;

util::Status PipelineSupervisor::Start() {
  if (started_) return util::OkStatus();
  std::error_code ec;
  std::filesystem::create_directories(options_.root_dir, ec);
  if (ec) {
    return util::UnavailableError("cannot create pipeline root " +
                                  options_.root_dir + ": " + ec.message());
  }

  // Manifest: corrupt or absent degrades to a cold start, never an abort.
  const auto loaded = PipelineManifest::Load(manifest_path_);
  if (loaded.ok()) {
    manifest_ = loaded.value();
  } else if (loaded.status().code() != util::StatusCode::kNotFound) {
    LAYERGCN_LOG(kWarning) << "manifest unusable, cold-starting pipeline: "
                           << loaded.status().ToString();
    OBS_COUNT("pipeline.manifest_fallbacks", 1);
    manifest_ = PipelineManifest{};
  }

  WalOptions wal_options;
  wal_options.dir = options_.root_dir + "/wal";
  wal_options.segment_bytes = options_.wal_segment_bytes;
  auto wal = InteractionWal::Open(wal_options);
  LAYERGCN_RETURN_IF_ERROR(wal.status());
  wal_ = std::move(wal).value();
  wal_recovery_ = wal_->recovery();

  // The merged state is a pure replay of the committed sequence.
  auto replay = InteractionWal::ReadAll(wal_->dir());
  LAYERGCN_RETURN_IF_ERROR(replay.status());
  ingestor_.Apply(replay.value());

  // The manifest may be *ahead* of a freshly recovered WAL only if someone
  // deleted segments; clamp so cadence math never goes negative.
  if (manifest_.trained_events > ingestor_.accepted()) {
    manifest_.trained_events = ingestor_.accepted();
  }

  started_ = true;
  LAYERGCN_LOG(kInfo) << "pipeline recovered: " << wal_recovery_.records
                      << " WAL records (" << wal_recovery_.corrupt_records
                      << " corrupt skipped, " << wal_recovery_.torn_tails
                      << " torn tails), run " << manifest_.run_id
                      << ", serving version " << manifest_.version;
  return util::OkStatus();
}

util::Status PipelineSupervisor::Ingest(const std::vector<WalRecord>& events) {
  if (!started_) {
    return util::FailedPreconditionError("Ingest() before Start()");
  }
  if (halted_) return last_error_;
  if (events.empty()) return util::OkStatus();

  const int64_t before = wal_->committed_records();
  util::Status st;
  for (const WalRecord& ev : events) {
    st = wal_->Append(ev);
    if (!st.ok()) break;
  }
  if (st.ok()) st = wal_->Commit();

  if (!st.ok()) {
    if (st.code() == util::StatusCode::kResourceExhausted) {
      // Full disk: the recovery drill cannot help — re-appending the
      // batch needs exactly the space the disk does not have. Degrade to
      // serving-only instead of retrying into the same wall.
      return HaltIngestion(st);
    }
    // Torn commit: the in-process recovery drill. Re-open (recovery
    // truncates the torn tail), compute exactly which suffix of the batch
    // was lost, and re-append it in order — the committed sequence ends up
    // identical to an unfaulted run's. A drill that cannot restore
    // durability (disk still unwritable) halts ingestion instead of
    // crashing: the published snapshot keeps serving.
    LAYERGCN_LOG(kWarning) << "WAL commit failed (" << st.ToString()
                           << "); re-opening for recovery";
    ++counters_.wal_reopens;
    OBS_COUNT("pipeline.wal.reopens", 1);
    WalOptions wal_options;
    wal_options.dir = options_.root_dir + "/wal";
    wal_options.segment_bytes = options_.wal_segment_bytes;
    auto reopened = InteractionWal::Open(wal_options);
    if (!reopened.ok()) return HaltIngestion(reopened.status());
    wal_ = std::move(reopened).value();
    const int64_t survived = wal_->committed_records() - before;
    if (survived < 0 ||
        survived > static_cast<int64_t>(events.size())) {
      return util::InternalError("WAL recovery position out of range");
    }
    for (size_t i = static_cast<size_t>(survived); i < events.size(); ++i) {
      const util::Status append = wal_->Append(events[i]);
      if (!append.ok()) return HaltIngestion(append);
    }
    const util::Status recommit = wal_->Commit();
    if (!recommit.ok()) return HaltIngestion(recommit);
  }

  ingestor_.Apply(events);
  ++counters_.ingest_batches;
  OBS_GAUGE("pipeline.events_pending_train", events_pending_train());
  return util::OkStatus();
}

util::Status PipelineSupervisor::HaltIngestion(util::Status cause) {
  halted_ = true;
  last_error_ = util::ResourceExhaustedError(
      "pipeline halted: WAL durability lost and unrecoverable in place; "
      "serving continues read-only; last error: " + cause.ToString());
  OBS_GAUGE("pipeline.supervisor.halted", 1);
  OBS_COUNT("pipeline.wal.ingest_halts", 1);
  LAYERGCN_LOG(kError)
      << "ingestion halted (serving-only degraded mode): " << cause.ToString();
  return last_error_;
}

util::Status PipelineSupervisor::StageResult(const char* stage,
                                             int* consecutive,
                                             util::Status st) {
  if (st.ok()) {
    *consecutive = 0;
    return st;
  }
  ++*consecutive;
  // OBS_COUNT caches its counter in a function-local static, so the name
  // must be a compile-time constant per call site.
  if (std::string_view(stage) == "train") {
    OBS_COUNT("pipeline.stage.train_failures", 1);
  } else {
    OBS_COUNT("pipeline.stage.publish_failures", 1);
  }
  LAYERGCN_LOG(kWarning) << "pipeline stage " << stage << " failed ("
                         << *consecutive << "/" << options_.max_stage_failures
                         << "): " << st.ToString();
  if (*consecutive >= options_.max_stage_failures) {
    halted_ = true;
    last_error_ = util::ResourceExhaustedError(
        std::string("pipeline halted: stage ") + stage +
        " exhausted its restart budget; last error: " + st.ToString());
    OBS_GAUGE("pipeline.supervisor.halted", 1);
    return last_error_;
  }
  return st;
}

util::Status PipelineSupervisor::RunCycle() {
  if (!started_) {
    return util::FailedPreconditionError("RunCycle() before Start()");
  }
  if (halted_) return last_error_;
  if (events_pending_train() < options_.min_train_events) {
    return util::OkStatus();
  }
  return TrainAndMaybePublish();
}

util::Status PipelineSupervisor::TrainAndMaybePublish() {
  // --- Stage: fine-tune --------------------------------------------------
  const uint64_t train_begin = obs::NowMicros();
  WarmStartOptions warm = options_.warm;
  warm.checkpoint_root = options_.root_dir + "/ckpt";
  warm.run_id = manifest_.run_id + 1;
  if (manifest_.run_id > 0) {
    warm.prev_checkpoint_dir =
        WarmStartTrainer::RunDir(warm.checkpoint_root, manifest_.run_id);
    warm.prev_num_users = manifest_.num_users;
    warm.prev_num_items = manifest_.num_items;
  }

  const data::Dataset dataset = ingestor_.BuildDataset();
  const auto baseline = store_->current();
  WarmStartTrainer trainer(options_.train_config);
  auto run = trainer.Run(dataset, baseline.get(), warm);
  if (!run.ok()) {
    ++counters_.train_failures;
    return StageResult("train", &consecutive_train_failures_, run.status());
  }
  WarmStartResult result = std::move(run).value();

  // The run completed: advance the durable position even when the gate
  // refuses publication (the checkpoints exist and the events are spent).
  manifest_.run_id = warm.run_id;
  manifest_.num_users = dataset.num_users;
  manifest_.num_items = dataset.num_items;
  manifest_.trained_events = ingestor_.accepted();
  LAYERGCN_RETURN_IF_ERROR(manifest_.Save(manifest_path_));
  ++counters_.runs_completed;
  OBS_COUNT("pipeline.supervisor.cycles", 1);

  const uint64_t train_us = obs::NowMicros() - train_begin;
  OBS_GAUGE("pipeline.stage.train_us", train_us);
  if (options_.stage_deadline_us > 0 && train_us > options_.stage_deadline_us) {
    ++counters_.deadline_overruns;
    OBS_COUNT("pipeline.stage.deadline_overruns", 1);
    // The completed work stands (state advanced above), but a chronically
    // slow stage must surface before it wedges the cadence entirely.
    const util::Status overrun = util::DeadlineExceededError(util::StrFormat(
        "train stage took %llu us (deadline %llu us)",
        static_cast<unsigned long long>(train_us),
        static_cast<unsigned long long>(options_.stage_deadline_us)));
    const util::Status escalated =
        StageResult("train", &consecutive_train_failures_, overrun);
    if (halted_) return escalated;
  } else {
    consecutive_train_failures_ = 0;
  }

  if (!result.gate_passed) {
    ++counters_.gate_refusals;
    return util::OkStatus();
  }

  // --- Stage: publish ----------------------------------------------------
  const uint64_t publish_begin = obs::NowMicros();
  const int64_t version = manifest_.version + 1;
  const util::Status published =
      publisher_->Publish(result.model->GetEmbeddingView(),
                          dataset.train_graph.user_items(), version);
  if (!published.ok()) {
    ++counters_.publish_failures;
    return StageResult("publish", &consecutive_publish_failures_, published);
  }
  const uint64_t publish_us = obs::NowMicros() - publish_begin;
  OBS_GAUGE("pipeline.stage.publish_us", publish_us);
  consecutive_publish_failures_ = 0;
  manifest_.version = version;
  LAYERGCN_RETURN_IF_ERROR(manifest_.Save(manifest_path_));
  ++counters_.publishes;
  if (options_.gc_covered_wal_segments) {
    // The manifest now durably records that trained_events are baked into
    // the published snapshot; sealed segments below that position are
    // recovery dead weight.
    wal_->GcCoveredSegments(manifest_.trained_events);
  }
  LAYERGCN_LOG(kInfo) << "published snapshot version " << version << " ("
                      << dataset.num_users << " users, " << dataset.num_items
                      << " items, R@" << options_.warm.quality_k << " "
                      << result.candidate_recall << ")";
  return util::OkStatus();
}

}  // namespace layergcn::pipeline
