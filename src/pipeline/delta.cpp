#include "pipeline/delta.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "obs/metrics.h"
#include "util/crc32.h"
#include "util/logging.h"

namespace layergcn::pipeline {
namespace {

int64_t PairKey(int32_t user, int32_t item) {
  return (static_cast<int64_t>(user) << 32) |
         static_cast<int64_t>(static_cast<uint32_t>(item));
}

uint32_t DigestSlice(uint32_t crc, std::vector<data::Interaction> slice) {
  std::sort(slice.begin(), slice.end(),
            [](const data::Interaction& a, const data::Interaction& b) {
              return a.user != b.user ? a.user < b.user : a.item < b.item;
            });
  for (const data::Interaction& ev : slice) {
    crc = util::Crc32Update(crc, &ev.user, sizeof(ev.user));
    crc = util::Crc32Update(crc, &ev.item, sizeof(ev.item));
    crc = util::Crc32Update(crc, &ev.timestamp, sizeof(ev.timestamp));
  }
  return crc;
}

}  // namespace

DeltaIngestor::DeltaIngestor(DeltaOptions options)
    : options_(std::move(options)) {
  if (options_.holdout_cycle < 3) options_.holdout_cycle = 3;
}

void DeltaIngestor::Route(const data::Interaction& ev) {
  // Pure function of the acceptance index: slot cycle-1 is validation,
  // the middle slot is test, everything else trains. The very first
  // events are train slots, so a tiny bootstrap has a graph to stand on.
  const int slot =
      static_cast<int>(accepted_ % static_cast<int64_t>(options_.holdout_cycle));
  ++accepted_;
  if (slot == options_.holdout_cycle - 1) {
    valid_.push_back(ev);
  } else if (slot == options_.holdout_cycle / 2) {
    test_.push_back(ev);
  } else {
    train_.push_back(ev);
    graph_dirty_ = true;
  }
}

IngestStats DeltaIngestor::Apply(const std::vector<WalRecord>& records) {
  IngestStats stats;
  const int32_t users_before = num_users_;
  const int32_t items_before = num_items_;
  for (const WalRecord& r : records) {
    if (r.user < 0 || r.item < 0 || r.user >= options_.max_users ||
        r.item >= options_.max_items) {
      ++stats.rejected;
      continue;
    }
    if (!seen_.insert(PairKey(r.user, r.item)).second) {
      ++stats.duplicates;
      continue;
    }
    num_users_ = std::max(num_users_, r.user + 1);
    num_items_ = std::max(num_items_, r.item + 1);
    Route({r.user, r.item, r.timestamp});
    ++stats.applied;
  }
  stats.new_users = num_users_ - users_before;
  stats.new_items = num_items_ - items_before;
  OBS_COUNT("pipeline.ingest.applied", stats.applied);
  OBS_COUNT("pipeline.ingest.duplicates", stats.duplicates);
  OBS_COUNT("pipeline.ingest.rejected", stats.rejected);
  OBS_GAUGE("pipeline.graph.users", num_users_);
  OBS_GAUGE("pipeline.graph.items", num_items_);
  OBS_GAUGE("pipeline.graph.train_edges", train_.size());
  return stats;
}

const graph::BipartiteGraph& DeltaIngestor::Graph() {
  if (graph_dirty_) {
    std::vector<std::pair<int32_t, int32_t>> pairs;
    pairs.reserve(train_.size());
    for (const data::Interaction& ev : train_) {
      pairs.emplace_back(ev.user, ev.item);
    }
    graph_ = graph::BipartiteGraph(num_users_, num_items_, pairs);
    graph_dirty_ = false;
    OBS_COUNT("pipeline.ingest.graph_rebuilds", 1);
  }
  return graph_;
}

const sparse::CsrMatrix& DeltaIngestor::MergeNormalizedAdjacency() {
  const graph::BipartiteGraph& g = Graph();
  // Full edge set kept: the counting-sort subset builder doubles as the
  // delta merge, reusing the workspace and CSR storage across merges.
  kept_scratch_.resize(static_cast<size_t>(g.num_edges()));
  std::iota(kept_scratch_.begin(), kept_scratch_.end(), 0);
  g.NormalizedAdjacencySubsetInto(kept_scratch_, &ws_, &adjacency_);
  OBS_COUNT("pipeline.ingest.merges", 1);
  return adjacency_;
}

data::Dataset DeltaIngestor::BuildDataset() const {
  return data::BuildDataset(options_.name, num_users_, num_items_, train_,
                            valid_, test_);
}

uint32_t DeltaIngestor::Digest() const {
  uint32_t crc = util::Crc32Init();
  crc = util::Crc32Update(crc, &num_users_, sizeof(num_users_));
  crc = util::Crc32Update(crc, &num_items_, sizeof(num_items_));
  crc = DigestSlice(crc, train_);
  crc = DigestSlice(crc, valid_);
  crc = DigestSlice(crc, test_);
  return util::Crc32Final(crc);
}

}  // namespace layergcn::pipeline
