// Append-only, CRC32-framed write-ahead log of interaction events.
//
// The WAL is the durability root of the continuous pipeline (DESIGN.md
// §16): every event is framed, checksummed, and fsynced in batches before
// anything downstream consumes it, so the merged graph is always a pure
// function of (committed WAL contents) and a crash at any point replays to
// the same state bit for bit.
//
// On-disk layout: a directory of `wal-NNNNNN.log` segments, rotated when
// the active segment exceeds WalOptions::segment_bytes. Each segment is
//
//   magic "LWAL" | uint32 version=1 | uint64 base_seq
//   per record: uint32 payload_len | payload | uint32 CRC-32(payload)
//
// where the payload of an interaction record is
// int32 user | int32 item | int64 timestamp (little-endian). New segments
// are created atomically (header written to `.tmp`, fsynced, renamed) so a
// crash during rotation never leaves a half-headered segment under a live
// name.
//
// Durability contract: Append() only buffers; Commit() writes the buffer
// to the active segment and fsyncs it. A record is *committed* once
// Commit() returns OK — recovery guarantees exactly the committed prefix
// survives. Recovery (run by Open()) walks the segments oldest-first,
// truncates a torn tail (incomplete trailing frame) instead of aborting,
// and skips records whose CRC does not match, counting both
// (pipeline.wal.torn_tails / pipeline.wal.corrupt_records).
//
// Fault points (util/fault_injection):
//   wal.torn_write  Commit() persists only a prefix of the batch and
//                   reports the crash as kDataLoss; the writer is poisoned
//                   and must be re-Open()ed (the recovery drill).
//   wal.short_read  recovery sees a truncated segment image.
//   wal.bit_flip    recovery sees one flipped payload bit.
//   wal.enospc      Commit() fails as kResourceExhausted with nothing
//                   written — the full-disk drill. The handle is poisoned
//                   like any I/O failure; owners that cannot recover must
//                   degrade to serving-only, never crash.
//
// Bounded growth: once a publish durably covers a whole segment (its
// events are baked into a served snapshot and the manifest), the segment
// is dead weight for recovery. GcCoveredSegments() deletes every sealed
// segment whose records all precede the covered sequence number; the
// active segment is never deleted.

#ifndef LAYERGCN_PIPELINE_WAL_H_
#define LAYERGCN_PIPELINE_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/status.h"

namespace layergcn::pipeline {

/// One logged interaction event.
struct WalRecord {
  int32_t user = 0;
  int32_t item = 0;
  int64_t timestamp = 0;

  bool operator==(const WalRecord& o) const {
    return user == o.user && item == o.item && timestamp == o.timestamp;
  }
};

struct WalOptions {
  /// Segment directory (created on Open).
  std::string dir;
  /// Rotate the active segment once its size reaches this many bytes.
  int64_t segment_bytes = 1 << 20;
  /// Commit() fsyncs at most once per call; Append() auto-commits after
  /// this many buffered records (0 disables auto-commit).
  int64_t auto_commit_records = 0;
};

/// What recovery found and repaired while opening / reading a WAL.
struct WalRecoveryStats {
  int64_t segments = 0;          ///< segment files scanned
  int64_t records = 0;           ///< committed records recovered
  int64_t corrupt_records = 0;   ///< complete frames failing CRC, skipped
  int64_t torn_tails = 0;        ///< segments whose trailing frame was cut
  int64_t bytes = 0;             ///< committed bytes across segments
};

/// Append-side handle. Not thread-safe: one producer owns it (the
/// supervisor serializes appends).
class InteractionWal {
 public:
  /// Opens (creating the directory if needed), runs recovery — torn tails
  /// are physically truncated so the writer can extend the last segment —
  /// and positions the writer after the last committed record.
  static util::StatusOr<std::unique_ptr<InteractionWal>> Open(
      WalOptions options);

  ~InteractionWal();

  InteractionWal(const InteractionWal&) = delete;
  InteractionWal& operator=(const InteractionWal&) = delete;

  /// Buffers one record (durable only after Commit()).
  util::Status Append(const WalRecord& record);

  /// Writes the buffered records to the active segment and fsyncs it.
  /// Rotates to a fresh segment afterwards when the active one is full.
  /// On a torn write (wal.torn_write or a real I/O failure) the handle is
  /// poisoned: every later call fails and the owner must re-Open(), whose
  /// recovery truncates the torn tail.
  util::Status Commit();

  /// Records recovered by Open() plus records committed since.
  int64_t committed_records() const { return committed_records_; }
  /// Records buffered by Append() but not yet committed.
  int64_t pending_records() const {
    return static_cast<int64_t>(pending_.size());
  }

  /// Recovery outcome of the Open() that produced this handle.
  const WalRecoveryStats& recovery() const { return recovery_; }

  const std::string& dir() const { return options_.dir; }

  /// Reads every committed record in `dir` oldest-first, applying the same
  /// tolerance as Open() (torn tail stops the segment, corrupt records are
  /// skipped + counted) but without modifying any file. The wal.short_read
  /// / wal.bit_flip fault points damage the in-memory image when armed.
  static util::StatusOr<std::vector<WalRecord>> ReadAll(
      const std::string& dir, WalRecoveryStats* stats = nullptr);

  /// Deletes sealed segments whose every record has sequence number
  /// < `covered_seq` (i.e. the *next* segment's base_seq is at or below
  /// the covered position). The active segment always survives, so the
  /// writer is never pulled out from under itself. Returns the number of
  /// segments removed (also counted as pipeline.wal.segments_gced).
  /// Replays after a GC recover only the surviving suffix — callers must
  /// ensure the covered prefix is durable elsewhere (a published snapshot
  /// + manifest) before garbage-collecting it.
  int64_t GcCoveredSegments(int64_t covered_seq);

  /// Segment file name for 0-based `index`: dir/wal-NNNNNN.log.
  static std::string SegmentPath(const std::string& dir, int64_t index);

  /// (index, path) of every well-named segment, ascending index.
  static std::vector<std::pair<int64_t, std::string>> ListSegments(
      const std::string& dir);

 private:
  InteractionWal() = default;

  /// Creates segment `index` (header only) atomically and makes it active.
  util::Status StartSegment(int64_t index, int64_t base_seq);

  WalOptions options_;
  WalRecoveryStats recovery_;
  std::vector<WalRecord> pending_;
  std::string active_path_;
  int64_t active_index_ = 0;
  int64_t active_bytes_ = 0;      // committed bytes in the active segment
  int64_t committed_records_ = 0; // global committed count (== next seq)
  bool poisoned_ = false;
};

}  // namespace layergcn::pipeline

#endif  // LAYERGCN_PIPELINE_WAL_H_
