// Per-request observability context for the serving tier.
//
// A RequestContext travels with one request from the moment the driver
// (layergcn_serve, a bench, a test) assigns it a deterministic id until
// the response line is written. The service fills stage timings and
// outcome flags as the request moves through the pipeline:
//
//   admission   Submit() call -> Recommend() entry (priority-class queue
//               wait + worker pickup; the whole latency for requests shed
//               at admission or expired while queued)
//   snapshot    snapshot fetch + request validation
//   cache       score-cache lookup (hits end the request here)
//   score       rank-kernel execution (FusedScoreTopK / quant kernels),
//               including the popularity fallback when degraded
//   serialize   response JSON construction + write (filled by the driver)
//
// Stage values are durations in microseconds over obs::NowMicros()'s
// clock; they cover disjoint sub-intervals of [submit_us, done_us], so
// their sum never exceeds total_us() — tools/validate_jsonl enforces
// exactly that on access logs. The context is written by one thread at a
// time (driver -> pool worker -> driver, sequenced by the Submit future),
// so it needs no internal synchronization.

#ifndef LAYERGCN_SERVE_REQUEST_CONTEXT_H_
#define LAYERGCN_SERVE_REQUEST_CONTEXT_H_

#include <cstdint>
#include <string>

#include "eval/quant_kernel.h"
#include "serve/item_index.h"
#include "serve/overload.h"
#include "util/status.h"

namespace layergcn::serve {

enum class Stage {
  kAdmission = 0,
  kSnapshot,
  kCache,
  kScore,
  kSerialize,
};
inline constexpr int kNumStages = 5;

inline const char* StageName(Stage stage) {
  switch (stage) {
    case Stage::kAdmission: return "admission";
    case Stage::kSnapshot: return "snapshot";
    case Stage::kCache: return "cache";
    case Stage::kScore: return "score";
    case Stage::kSerialize: return "serialize";
  }
  return "unknown";
}

struct RequestContext {
  /// Driver-assigned id, unique and increasing within a run (1-based).
  uint64_t id = 0;

  // Request echo (available even when the request never parsed).
  int32_t user = -1;
  int32_t k = 0;
  uint64_t budget_us = 0;
  Priority priority = Priority::kInteractive;

  // Outcome flags.
  bool malformed = false;  // request line never parsed into a request
  bool shed = false;       // rejected at the admission door
  bool expired = false;    // budget elapsed while queued; never scored
  bool cached = false;
  bool partial = false;
  bool degraded = false;
  /// Brownout rung the request was served under (kNone when brownout is
  /// off or the ladder sat at full quality).
  BrownoutLevel brownout = BrownoutLevel::kNone;
  /// Backoff hint attached to shed responses (0 otherwise).
  uint64_t retry_after_ms = 0;
  eval::ScoreEncoding encoding = eval::ScoreEncoding::kF32;
  /// Candidate-generation path that produced the ranking: ivf when the
  /// index was probed, exact otherwise (full scan, cache hits, degraded
  /// and failed requests included — anything that never probed).
  RetrievalMode retrieval = RetrievalMode::kExact;
  /// Items the rank kernel scored: the gathered candidate count under ivf,
  /// the full item count under an exact scan, 0 when no kernel ran
  /// (cached / degraded / shed / failed).
  int64_t candidates = 0;
  int64_t snapshot_version = 0;

  util::StatusCode code = util::StatusCode::kOk;
  std::string error;  // status message when code != kOk

  // Timeline (obs::NowMicros() epoch). submit/done belong to the driver,
  // start/finish to the service. Zero = never reached.
  uint64_t submit_us = 0;
  uint64_t start_us = 0;
  uint64_t finish_us = 0;
  uint64_t done_us = 0;

  /// Disjoint per-stage durations, indexed by Stage.
  uint64_t stage_us[kNumStages] = {0, 0, 0, 0, 0};

  uint64_t& stage(Stage s) { return stage_us[static_cast<int>(s)]; }
  uint64_t stage(Stage s) const { return stage_us[static_cast<int>(s)]; }

  /// End-to-end latency as the access log reports it: driver submit to
  /// response written, falling back to the widest interval recorded.
  uint64_t total_us() const {
    const uint64_t begin = submit_us != 0 ? submit_us : start_us;
    const uint64_t end = done_us != 0 ? done_us : finish_us;
    return end > begin ? end - begin : 0;
  }

  /// Latency the service observed (for SLO accounting before the driver
  /// finishes serialization).
  uint64_t service_us() const {
    const uint64_t begin = submit_us != 0 ? submit_us : start_us;
    return finish_us > begin ? finish_us - begin : 0;
  }
};

}  // namespace layergcn::serve

#endif  // LAYERGCN_SERVE_REQUEST_CONTEXT_H_
