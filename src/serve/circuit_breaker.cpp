#include "serve/circuit_breaker.h"

#include "obs/metrics.h"
#include "util/logging.h"

namespace layergcn::serve {

CircuitBreaker::CircuitBreaker() : CircuitBreaker(Options()) {}

CircuitBreaker::CircuitBreaker(const Options& options) : options_(options) {
  LAYERGCN_CHECK_GE(options_.failure_threshold, 1);
  LAYERGCN_CHECK_GE(options_.half_open_probes, 1);
}

void CircuitBreaker::TripOpen(uint64_t now_us) {
  state_ = State::kOpen;
  opened_at_us_ = now_us;
  probes_issued_ = 0;
  probe_successes_ = 0;
  OBS_COUNT("serve.breaker_opens", 1);
}

bool CircuitBreaker::Allow(uint64_t now_us) {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (now_us < opened_at_us_ + options_.open_cooldown_us) return false;
      state_ = State::kHalfOpen;
      probes_issued_ = 1;  // this call is the first probe
      probe_successes_ = 0;
      return true;
    case State::kHalfOpen:
      if (probes_issued_ >= options_.half_open_probes) return false;
      ++probes_issued_;
      return true;
  }
  return false;
}

void CircuitBreaker::RecordSuccess() {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ == State::kHalfOpen) {
    if (++probe_successes_ >= options_.half_open_probes) {
      state_ = State::kClosed;
      consecutive_failures_ = 0;
    }
    return;
  }
  consecutive_failures_ = 0;
}

void CircuitBreaker::RecordFailure(uint64_t now_us) {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ == State::kHalfOpen) {
    // A failed probe re-opens immediately and restarts the cooldown.
    TripOpen(now_us);
    return;
  }
  if (state_ == State::kClosed &&
      ++consecutive_failures_ >= options_.failure_threshold) {
    TripOpen(now_us);
  }
}

CircuitBreaker::State CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

int CircuitBreaker::consecutive_failures() const {
  std::lock_guard<std::mutex> lock(mu_);
  return consecutive_failures_;
}

}  // namespace layergcn::serve
