// Health / readiness reporting for the serving tier.
//
// HealthReporter periodically renders one JSON status document answering
// the operator's questions at a glance — is the service ready (a snapshot
// is loaded), how stale is it, is the breaker open, is the SLO burning,
// what are the current shed/degraded/cache-hit rates, how deep is the
// admission queue — and writes it atomically (tmp + rename) so a reader
// never sees a torn file. Optionally it also writes the whole
// MetricsRegistry as Prometheus text exposition next to it.
//
// Readiness ladder:
//   "unready"   no snapshot published — the service cannot answer
//   "degraded"  serving, but impaired: breaker open or SLO in breach
//   "ok"        serving normally
//
// Rates are per-second deltas between consecutive writes of the relevant
// serve.* counters (zero on the first write and when obs metrics are
// compiled out or switched off).
//
// Start() spawns one background thread that writes every period_us;
// WriteNow() is the synchronous path drivers call after a sweep and tests
// use with a synthetic clock.

#ifndef LAYERGCN_SERVE_HEALTH_H_
#define LAYERGCN_SERVE_HEALTH_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include "obs/metrics.h"
#include "serve/recommend_service.h"
#include "serve/snapshot.h"

namespace layergcn::serve {

class HealthReporter {
 public:
  struct Options {
    /// Status JSON path; empty disables the status file (StatusJson()
    /// still works).
    std::string status_path;
    /// Prometheus text exposition path; empty disables it.
    std::string prom_path;
    /// Background write period.
    uint64_t period_us = 1'000'000;
    /// Snapshot-staleness alarm: when the served snapshot is older than
    /// this, the ladder degrades and the serve.snapshot_stale gauge flips
    /// to 1 — the "publisher wedged" signal of the continuous pipeline.
    /// 0 disables the check.
    uint64_t max_snapshot_age_us = 0;
  };

  /// `store` and `service` must outlive the reporter.
  HealthReporter(const SnapshotStore* store, const RecommendService* service,
                 Options options);
  ~HealthReporter();

  HealthReporter(const HealthReporter&) = delete;
  HealthReporter& operator=(const HealthReporter&) = delete;

  /// Starts the periodic writer (no-op if already running).
  void Start();
  /// Stops it, flushing one final write so the file reflects shutdown
  /// state. Idempotent; also run by the destructor.
  void Stop();

  /// Renders the status document at `now_us` (obs::NowMicros() epoch).
  std::string StatusJson(uint64_t now_us);

  /// Writes the status file (and the Prometheus file when configured) at
  /// `now_us`. False when any configured write failed.
  bool WriteNow(uint64_t now_us);

  /// Overall status string at `now_us`: "unready" / "degraded" / "ok".
  /// Degraded covers an open breaker, an SLO breach, an active brownout
  /// rung, or a stale snapshot.
  std::string StatusString(uint64_t now_us) const;

  /// True when staleness checking is on, a snapshot is published, and its
  /// age at `now_us` exceeds Options::max_snapshot_age_us. Updates the
  /// serve.snapshot_stale gauge as a side effect.
  bool SnapshotStale(uint64_t now_us) const;

  /// Status writes that completed (tests / liveness checks).
  uint64_t writes() const { return writes_.load(std::memory_order_relaxed); }

 private:
  void RunLoop();

  const SnapshotStore* const store_;
  const RecommendService* const service_;
  const Options options_;

  // Counter baseline from the previous write, for per-second rates.
  std::mutex rate_mu_;
  obs::MetricsSnapshot last_snapshot_;
  uint64_t last_write_us_ = 0;
  bool has_baseline_ = false;

  std::atomic<uint64_t> writes_{0};

  std::mutex thread_mu_;
  std::condition_variable stop_cv_;
  std::thread thread_;
  bool stopping_ = false;
};

}  // namespace layergcn::serve

#endif  // LAYERGCN_SERVE_HEALTH_H_
