// Hardened top-K recommendation serving on top of the fused rank kernel.
//
// A request names a user and a K; the response is the model's top-K items
// (training interactions excluded), scored against the current
// ModelSnapshot through eval::FusedScoreTopK — the same kernel, arguments,
// and (score desc, id asc) total order the offline Evaluator uses, so a
// served ranking is bit-identical to the evaluation ranking for the same
// embeddings at any thread count.
//
// Robustness ladder, in order:
//   validation   every request field is checked up front; anything
//                unusable is a structured InvalidArgument, never UB
//   admission    Submit() queues requests in strict-priority classes
//                (interactive > batch > background) and bounds total
//                backlog by `queue_capacity`; at the bound the newest
//                lowest-priority queued request is evicted to admit a
//                higher-priority one, otherwise the arrival itself is
//                shed — always a structured ResourceExhausted
//                (serve.shed, serve.shed.<class>) carrying a
//                retry_after_ms hint sized from the smoothed service
//                latency and current backlog
//   concurrency  queued requests are scored by at most `limit` workers:
//                the static cap (queue_capacity, or overload.fixed_limit)
//                or, with overload.adaptive, an AIMD AdaptiveLimiter that
//                squeezes the limit down when completions run past the
//                latency target and re-opens it on a good streak
//                (serve.overload.limit gauge — see serve/overload.h)
//   dequeue      a request whose budget expired while it waited is shed
//                at dequeue with DeadlineExceeded and never scored
//                (serve.expired_in_queue) — overload must not burn CPU
//                computing answers nobody is waiting for
//   deadline     a per-request budget becomes an absolute RankDeadline
//                enforced at item-tile boundaries inside the kernel; on
//                expiry a truncated prefix ranking is returned flagged
//                `partial` (serve.deadline_partial), or DeadlineExceeded
//                when nothing was scored (serve.deadline_errors)
//   brownout     with overload.brownout.enabled, sustained SLO breach
//                (serving_stats' SloMonitor) steps the serving mode down
//                exact -> ivf -> quantized -> cache/popularity-only and
//                back up with hysteresis (serve.overload.brownout_level;
//                per-request in RequestContext::brownout)
//   degradation  deadline failures feed a CircuitBreaker; while it is
//                open, requests skip model scoring and serve the
//                snapshot's popularity ranking flagged `degraded`
//                (serve.degraded) — the service answers something
//                sensible even when scoring is unhealthy
//
// Scoring encoding: options.encoding selects which embedding copy the
// request scores against — f32 (the bit-exact reference, default), int8,
// or bf16 (quantized kernels in eval/quant_kernel.h). A request whose
// snapshot lacks the requested encoding falls back to f32 for that request
// (serve.encoding_fallbacks). Rankings are deterministic within an
// encoding; across encodings they differ by bounded quantization error.
//
// Two-stage retrieval: options.retrieval selects the candidate set the
// rank kernel scores. kExact scans every item (the reference path above);
// kIvf probes the snapshot's ItemIndex — score the user against all cell
// centroids (a tiny GEMV), take the top options.nprobe cells, gather
// their members, and re-rank only those candidates with the same
// per-encoding kernels (subset variants computing bit-identical per-pair
// scores). The ivf ranking is the exact ranking filtered to the probed
// cells — approximate only in which items were considered, never in how
// they were scored or ordered. Requests carrying exact=true, and every
// request against a snapshot without an index (build failed or never
// requested — serve.retrieval.exact_fallbacks), take the exact path.
// Counters: serve.retrieval.{requests,cells_probed,candidates_scored};
// options.recall_sample_every adds a live recall gauge.
//
// Score cache: a bounded LRU of complete responses keyed by user id
// (serve.score_cache_{hits,misses}). An entry is served only when its
// snapshot version AND encoding AND retrieval mode match the current ones
// and it was computed for a k >= the request's k (a top-K prefix of a
// larger top-K is exact within its mode; an ivf prefix is never an exact
// answer, hence the mode key). Version keying makes hot-swap invalidation
// automatic: entries from a replaced snapshot can never be served again.
// Partial and degraded responses are never cached.
//
// Every request increments serve.requests, lands in the serve.latency_us
// histogram, and runs under an OBS_SPAN("serve.request") trace span.
//
// Observability: the ctx-taking overloads thread a RequestContext through
// the pipeline — per-stage timings (admission/snapshot/cache/score), the
// outcome flags above, and the request's deterministic id, which a
// TraceRequestScope stamps onto every span the request closes so Chrome
// traces are filterable by request. Finished contexts feed stats():
// sliding-window stage percentile gauges plus the availability/latency
// SLO burn-rate monitor (see serve/serving_stats.h).

#ifndef LAYERGCN_SERVE_RECOMMEND_SERVICE_H_
#define LAYERGCN_SERVE_RECOMMEND_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "eval/fused_rank.h"
#include "eval/quant_kernel.h"
#include "serve/circuit_breaker.h"
#include "serve/overload.h"
#include "serve/request_context.h"
#include "serve/serving_stats.h"
#include "serve/snapshot.h"
#include "util/status.h"

namespace layergcn::serve {

struct RecommendRequest {
  int32_t user_id = -1;
  /// Number of items wanted; 1 <= k <= options.max_k.
  int32_t k = 10;
  /// Wall-clock budget in microseconds; 0 = no deadline.
  uint64_t budget_us = 0;
  /// Force the exact full-scan path for this request even when the service
  /// defaults to ivf retrieval — the bit-exact reference used by parity
  /// tests and recall sampling. Also exempt from brownout mode forcing.
  bool exact = false;
  /// Admission class; under overload lower classes are shed first.
  Priority priority = Priority::kInteractive;
};

struct ScoredItem {
  int32_t item = 0;
  float score = 0.f;
};

struct RecommendResponse {
  /// Best first. Model scores normally; popularity counts when degraded.
  std::vector<ScoredItem> items;
  /// Deadline expired mid-scan: `items` ranks only the scanned prefix of
  /// the item space (still best-first within it).
  bool partial = false;
  /// Served from the popularity fallback, not model scoring.
  bool degraded = false;
  /// Served from the score cache (no kernel ran for this request).
  bool cached = false;
  /// The encoding that actually scored this response (f32 when the
  /// requested quantized encoding was absent from the snapshot).
  eval::ScoreEncoding encoding = eval::ScoreEncoding::kF32;
  /// The retrieval path that actually served this response: ivf when the
  /// index was probed, exact for full scans — including per-request
  /// fallbacks when the snapshot has no index (serve.retrieval.
  /// exact_fallbacks) and req.exact overrides.
  RetrievalMode retrieval = RetrievalMode::kExact;
  /// Items the rank kernel scored (see RequestContext::candidates).
  int64_t candidates = 0;
  /// Brownout rung this response was served under (kNone = full quality).
  BrownoutLevel brownout = BrownoutLevel::kNone;
  int64_t snapshot_version = 0;
  uint64_t latency_us = 0;
};

struct RecommendServiceOptions {
  /// Largest admissible request k.
  int32_t max_k = 1000;
  /// Async admission bound: queued + executing Submit() requests past this
  /// are shed (or displace a lower-priority queued request). >= 1.
  int64_t queue_capacity = 64;
  /// Adaptive concurrency limiter, priority shedding hints, and the
  /// brownout ladder (see serve/overload.h). Defaults preserve the static
  /// behavior: limit = queue_capacity, brownout off.
  OverloadOptions overload;
  CircuitBreaker::Options breaker;
  /// Kernel tuning; num_threads = 0 uses the shared compute pool.
  eval::FusedRankConfig rank;
  /// Embedding encoding requests score against (per-request f32 fallback
  /// when the snapshot lacks it).
  eval::ScoreEncoding encoding = eval::ScoreEncoding::kF32;
  /// Candidate-generation mode. kIvf requires the snapshot to carry an
  /// ItemIndex (SnapshotStore::SetIndexOptions before Reload); requests
  /// against an index-less snapshot fall back to exact per request
  /// (serve.retrieval.exact_fallbacks).
  RetrievalMode retrieval = RetrievalMode::kExact;
  /// Cells probed per ivf request (clamped to [1, index cells]).
  int32_t nprobe = 8;
  /// When > 0 and serving ivf, every Nth complete index-served response is
  /// re-ranked exactly and the top-K overlap published as the
  /// serve.retrieval.recall_sample gauge — a live recall monitor costing
  /// one exact scan per N requests.
  int64_t recall_sample_every = 0;
  /// Bounded LRU score cache size in users; 0 disables caching.
  int64_t score_cache_capacity = 1024;
  /// SLO objectives + quantile windows. The service applies
  /// obs::SloMonitor::FromEnv on top, so LAYERGCN_SLO_* environment
  /// overrides always win over these programmatic defaults.
  ServingStatsOptions stats;
};

/// Thread-safe serving front end over a SnapshotStore. The store outlives
/// the service; the service holds no training state.
class RecommendService {
 public:
  explicit RecommendService(SnapshotStore* store);  // default options
  RecommendService(SnapshotStore* store,
                   const RecommendServiceOptions& options);
  /// Drains in-flight async requests before returning.
  ~RecommendService();

  RecommendService(const RecommendService&) = delete;
  RecommendService& operator=(const RecommendService&) = delete;

  /// Synchronous path: validate, score (or degrade), respond. Errors:
  /// FailedPrecondition (no snapshot), InvalidArgument (bad request),
  /// DeadlineExceeded (budget spent with nothing scored). Records itself
  /// into stats() on completion.
  util::StatusOr<RecommendResponse> Recommend(const RecommendRequest& req);

  /// Observable synchronous path: fills `ctx` (stage timings, outcome
  /// flags, status) as the request moves through the pipeline and tags
  /// every trace span with ctx->id. Does NOT record into stats() — the
  /// caller finishes the request (stamps serialize time / done_us) and
  /// records. `ctx` must be non-null.
  util::StatusOr<RecommendResponse> Recommend(const RecommendRequest& req,
                                              RequestContext* ctx);

  /// Admission-controlled async path: queues the request in its priority
  /// class and scores it on the shared compute pool under the concurrency
  /// limit. At the backlog bound the future resolves immediately to
  /// ResourceExhausted (possibly after evicting a lower-priority queued
  /// request, whose own future resolves shed) — load is shed at the door,
  /// not queued forever. A request whose budget expires while queued
  /// resolves to DeadlineExceeded without ever being scored.
  std::future<util::StatusOr<RecommendResponse>> Submit(
      const RecommendRequest& req);

  /// Observable async path: stamps ctx->submit_us now (admission time =
  /// submit -> worker pickup) and, when shed/expired, ctx's flags +
  /// status + retry_after_ms. `ctx` may be null (self-recording, as
  /// Submit(req)); when non-null it must outlive the returned future and
  /// recording is the caller's.
  std::future<util::StatusOr<RecommendResponse>> Submit(
      const RecommendRequest& req, RequestContext* ctx);

  /// Async requests currently queued or executing.
  int64_t in_flight() const;

  /// Concurrency limit admission currently dispatches under: the live
  /// limiter value when adaptive, else the static cap.
  int64_t concurrency_limit() const;

  /// Point-in-time overload snapshot (limit, per-class queue depths,
  /// brownout rung) for HealthReporter and tests.
  OverloadState overload_state() const;

  CircuitBreaker& breaker() { return breaker_; }
  const CircuitBreaker& breaker() const { return breaker_; }
  const AdaptiveLimiter& limiter() const { return limiter_; }
  const BrownoutController& brownout() const { return brownout_; }
  /// Live per-stage quantiles + SLO burn state fed by finished requests.
  ServingStats& stats() { return stats_; }
  const ServingStats& stats() const { return stats_; }
  const RecommendServiceOptions& options() const { return options_; }

 private:
  /// One cached complete response: valid only against the snapshot
  /// version, encoding, and retrieval mode it was computed with, reusable
  /// for any request k <= k. Keying by retrieval mode matters for
  /// correctness, not just freshness: an ivf top-K is approximate, so its
  /// prefix must never answer a request that asked for exact (and an
  /// exact entry must not masquerade as the index's output either).
  struct CacheEntry {
    int64_t snapshot_version = 0;
    eval::ScoreEncoding encoding = eval::ScoreEncoding::kF32;
    RetrievalMode retrieval = RetrievalMode::kExact;
    int32_t k = 0;
    std::vector<ScoredItem> items;
    std::list<int32_t>::iterator lru_it;
  };

  /// One admitted-but-not-finished async request.
  struct Pending {
    RecommendRequest req;
    RequestContext* ctx = nullptr;  // caller-owned; null = self-recording
    std::shared_ptr<std::promise<util::StatusOr<RecommendResponse>>> promise;
    uint64_t submit_us = 0;
  };

  util::Status Validate(const ModelSnapshot& snap,
                        const RecommendRequest& req) const;
  RecommendResponse ServeDegraded(const ModelSnapshot& snap,
                                  const RecommendRequest& req) const;
  /// Runs the rank kernel for `req` under `encoding` + `retrieval`:
  /// full-scan kernels for exact, TopCells -> GatherCandidates -> subset
  /// kernels for ivf. Returns the per-user rankings (single user) and
  /// fills `scores` / `candidates_scored`.
  std::vector<std::vector<int32_t>> ScoreTopK(
      const ModelSnapshot& snap, const RecommendRequest& req,
      eval::ScoreEncoding encoding, RetrievalMode retrieval,
      eval::RankDeadline* deadline, std::vector<std::vector<float>>* scores,
      int64_t* candidates_scored);
  /// Cache lookup for (user, k) against `snap` + `encoding` + `retrieval`;
  /// fills `resp` and returns true on a hit. Counts
  /// serve.score_cache_{hits,misses}.
  bool CacheLookup(const ModelSnapshot& snap, eval::ScoreEncoding encoding,
                   RetrievalMode retrieval, const RecommendRequest& req,
                   RecommendResponse* resp);
  /// Inserts a complete (non-partial, non-degraded) response, evicting the
  /// least recently used entry past capacity.
  void CacheInsert(const ModelSnapshot& snap, eval::ScoreEncoding encoding,
                   RetrievalMode retrieval, const RecommendRequest& req,
                   const RecommendResponse& resp);

  /// Pops the oldest request of the highest non-empty priority class.
  /// False when every queue is empty. mu_ held.
  bool PopNextLocked(Pending* out);
  /// Spawns pool workers until either the concurrency limit or the
  /// backlog is covered. mu_ held.
  void DispatchLocked();
  /// Worker body: drain queued requests one at a time until the backlog
  /// is empty or the limit shrank below this worker.
  void WorkerLoop();
  /// Resolves a shed request (at admission or via priority eviction) with
  /// ResourceExhausted + retry hint; records when self-recording.
  void ResolveShed(Pending&& p, const std::string& reason,
                   uint64_t retry_after_ms, uint64_t now_us);
  /// Resolves a request whose budget expired while queued with
  /// DeadlineExceeded (serve.expired_in_queue); never scores it.
  void ResolveExpired(Pending&& p, uint64_t now_us);
  /// retry_after_ms hint from smoothed latency and backlog. mu_ held.
  uint64_t RetryAfterMsLocked() const;

  SnapshotStore* const store_;
  const RecommendServiceOptions options_;
  CircuitBreaker breaker_;
  ServingStats stats_;
  AdaptiveLimiter limiter_;
  BrownoutController brownout_;
  /// Index-served responses since startup, driving recall_sample_every.
  std::atomic<int64_t> ivf_served_{0};
  /// EWMA of async completion latency (retry hints; kept even when the
  /// limiter is off).
  std::atomic<uint64_t> ewma_latency_us_{0};

  mutable std::mutex mu_;
  std::condition_variable drained_cv_;
  std::deque<Pending> queues_[kNumPriorities];  // waiting, per class
  int64_t queued_ = 0;     // total across queues_
  int64_t executing_ = 0;  // popped by a worker, not yet finished
  int64_t workers_ = 0;    // pool worker tasks alive
  bool shutting_down_ = false;

  // Score cache state (own lock: cache traffic must not contend with the
  // admission/drain bookkeeping above).
  mutable std::mutex cache_mu_;
  std::list<int32_t> cache_lru_;  // front = most recently used user
  std::unordered_map<int32_t, CacheEntry> cache_;
};

}  // namespace layergcn::serve

#endif  // LAYERGCN_SERVE_RECOMMEND_SERVICE_H_
