// Hardened top-K recommendation serving on top of the fused rank kernel.
//
// A request names a user and a K; the response is the model's top-K items
// (training interactions excluded), scored against the current
// ModelSnapshot through eval::FusedScoreTopK — the same kernel, arguments,
// and (score desc, id asc) total order the offline Evaluator uses, so a
// served ranking is bit-identical to the evaluation ranking for the same
// embeddings at any thread count.
//
// Robustness ladder, in order:
//   validation   every request field is checked up front; anything
//                unusable is a structured InvalidArgument, never UB
//   admission    Submit() bounds the number of queued + in-flight async
//                requests; past `queue_capacity` requests are shed
//                immediately with ResourceExhausted (serve.shed)
//   deadline     a per-request budget becomes an absolute RankDeadline
//                enforced at item-tile boundaries inside the kernel; on
//                expiry a truncated prefix ranking is returned flagged
//                `partial` (serve.deadline_partial), or DeadlineExceeded
//                when nothing was scored (serve.deadline_errors)
//   degradation  deadline failures feed a CircuitBreaker; while it is
//                open, requests skip model scoring and serve the
//                snapshot's popularity ranking flagged `degraded`
//                (serve.degraded) — the service answers something
//                sensible even when scoring is unhealthy
//
// Every request increments serve.requests, lands in the serve.latency_us
// histogram, and runs under an OBS_SPAN("serve.request") trace span.

#ifndef LAYERGCN_SERVE_RECOMMEND_SERVICE_H_
#define LAYERGCN_SERVE_RECOMMEND_SERVICE_H_

#include <condition_variable>
#include <cstdint>
#include <future>
#include <mutex>
#include <vector>

#include "eval/fused_rank.h"
#include "serve/circuit_breaker.h"
#include "serve/snapshot.h"
#include "util/status.h"

namespace layergcn::serve {

struct RecommendRequest {
  int32_t user_id = -1;
  /// Number of items wanted; 1 <= k <= options.max_k.
  int32_t k = 10;
  /// Wall-clock budget in microseconds; 0 = no deadline.
  uint64_t budget_us = 0;
};

struct ScoredItem {
  int32_t item = 0;
  float score = 0.f;
};

struct RecommendResponse {
  /// Best first. Model scores normally; popularity counts when degraded.
  std::vector<ScoredItem> items;
  /// Deadline expired mid-scan: `items` ranks only the scanned prefix of
  /// the item space (still best-first within it).
  bool partial = false;
  /// Served from the popularity fallback, not model scoring.
  bool degraded = false;
  int64_t snapshot_version = 0;
  uint64_t latency_us = 0;
};

struct RecommendServiceOptions {
  /// Largest admissible request k.
  int32_t max_k = 1000;
  /// Async admission bound: queued + in-flight Submit() requests past this
  /// are shed. >= 1.
  int64_t queue_capacity = 64;
  CircuitBreaker::Options breaker;
  /// Kernel tuning; num_threads = 0 uses the shared compute pool.
  eval::FusedRankConfig rank;
};

/// Thread-safe serving front end over a SnapshotStore. The store outlives
/// the service; the service holds no training state.
class RecommendService {
 public:
  explicit RecommendService(SnapshotStore* store);  // default options
  RecommendService(SnapshotStore* store,
                   const RecommendServiceOptions& options);
  /// Drains in-flight async requests before returning.
  ~RecommendService();

  RecommendService(const RecommendService&) = delete;
  RecommendService& operator=(const RecommendService&) = delete;

  /// Synchronous path: validate, score (or degrade), respond. Errors:
  /// FailedPrecondition (no snapshot), InvalidArgument (bad request),
  /// DeadlineExceeded (budget spent with nothing scored).
  util::StatusOr<RecommendResponse> Recommend(const RecommendRequest& req);

  /// Admission-controlled async path: runs Recommend() on the shared
  /// compute pool. When the bound is hit the future resolves immediately
  /// to ResourceExhausted — load is shed at the door, not queued forever.
  std::future<util::StatusOr<RecommendResponse>> Submit(
      const RecommendRequest& req);

  /// Async requests currently queued or running.
  int64_t in_flight() const;

  CircuitBreaker& breaker() { return breaker_; }
  const RecommendServiceOptions& options() const { return options_; }

 private:
  util::Status Validate(const ModelSnapshot& snap,
                        const RecommendRequest& req) const;
  RecommendResponse ServeDegraded(const ModelSnapshot& snap,
                                  const RecommendRequest& req) const;

  SnapshotStore* const store_;
  const RecommendServiceOptions options_;
  CircuitBreaker breaker_;

  mutable std::mutex mu_;
  std::condition_variable drained_cv_;
  int64_t in_flight_ = 0;
  bool shutting_down_ = false;
};

}  // namespace layergcn::serve

#endif  // LAYERGCN_SERVE_RECOMMEND_SERVICE_H_
