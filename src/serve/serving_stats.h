// Live serving statistics: per-stage sliding quantiles + SLO burn rates.
//
// ServingStats is the single sink for finished RequestContexts. Each
// Record() feeds
//   * one obs::SlidingQuantile per pipeline stage plus one for end-to-end
//     latency — refreshed as serve.stage.<name>.{p50,p95,p99,p999}_us and
//     serve.latency.{p50,p95,p99,p999}_us gauges every
//     `gauge_update_every` requests, so the metrics snapshot always shows
//     the last-horizon percentiles, not all-of-process ones;
//   * one obs::SloMonitor tracking the availability and latency
//     objectives over short/long burn windows. State transitions are
//     latched by the monitor (slo.transitions, slo.state gauges) and
//     logged here at kWarning so an operator tailing the log sees
//     OK -> WARN -> BREACH edges with their burn rates.
//
// Classification: a request counts against availability when it failed for
// a server-side reason (shed, deadline with nothing scored, no snapshot,
// internal/unavailable/data-loss). Client mistakes — malformed lines and
// InvalidArgument — count in request totals but are nobody's outage; they
// are still counted (serve.malformed_requests) and access-logged.
//
// Ownership: RecommendService owns one ServingStats. The contract for who
// records is "whoever finishes the request": the ctx-taking
// Recommend/Submit overloads leave recording to the driver (which stamps
// serialize time first); the ctx-free overloads record internally.

#ifndef LAYERGCN_SERVE_SERVING_STATS_H_
#define LAYERGCN_SERVE_SERVING_STATS_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "obs/sliding_quantile.h"
#include "obs/slo.h"
#include "serve/request_context.h"

namespace layergcn::serve {

struct ServingStatsOptions {
  /// SLO objectives/windows; RecommendService applies SloMonitor::FromEnv
  /// on top so LAYERGCN_SLO_* always win.
  obs::SloMonitor::Options slo;
  /// Ring geometry of every stage/latency quantile estimator.
  obs::SlidingQuantile::Options quantile;
  /// Refresh the percentile gauges and re-evaluate the SLO state every
  /// this many recorded requests (>= 1).
  int gauge_update_every = 32;
};

/// Thread-safe. Record() is lock-free in the steady state (sliding-window
/// counter bumps); the periodic gauge refresh merges windows.
class ServingStats {
 public:
  ServingStats();  // default options
  explicit ServingStats(const ServingStatsOptions& options);

  /// Accounts one finished request at `now_us` (obs::NowMicros() epoch,
  /// the same clock the context's timestamps use).
  void Record(const RequestContext& ctx, uint64_t now_us);

  /// Force a gauge refresh + SLO re-evaluation (drivers call this once
  /// after a sweep so final gauges cover the tail, tests use it to avoid
  /// the every-N cadence).
  void UpdateGauges(uint64_t now_us);

  obs::SloMonitor& slo() { return slo_; }
  const obs::SloMonitor& slo() const { return slo_; }
  const obs::SlidingQuantile& stage_quantile(Stage stage) const {
    return *stage_us_[static_cast<int>(stage)];
  }
  const obs::SlidingQuantile& latency_quantile() const { return latency_us_; }

  /// Requests Record() has seen.
  uint64_t recorded() const {
    return recorded_.load(std::memory_order_relaxed);
  }

  /// True when `code` is a server-side failure for SLO purposes.
  static bool IsServerError(util::StatusCode code);

 private:
  const ServingStatsOptions options_;
  std::unique_ptr<obs::SlidingQuantile> stage_us_[kNumStages];
  obs::SlidingQuantile latency_us_;
  obs::SloMonitor slo_;
  std::atomic<uint64_t> recorded_{0};
};

}  // namespace layergcn::serve

#endif  // LAYERGCN_SERVE_SERVING_STATS_H_
