// Overload control for the serving tier: adaptive concurrency, priority
// classes, and the brownout ladder.
//
// Three cooperating pieces, all deterministic under a synthetic clock
// (callers pass `now_us` explicitly, like CircuitBreaker):
//
//   AdaptiveLimiter      AIMD concurrency limit driven by completion
//                        latency. Completions over the latency target (or
//                        flagged congested: deadline partials/expiries)
//                        multiply the limit down by `decrease_factor`, at
//                        most once per `decrease_cooldown_us`; a streak of
//                        `increase_every` good completions adds one. The
//                        live limit is the serve.overload.limit gauge, so
//                        an operator sees the service squeeze itself when
//                        scoring slows down and re-open when it recovers.
//
//   Priority             Strict-priority admission classes. When the
//                        admission bound is hit, the service sheds the
//                        lowest class first (evicting a queued background
//                        or batch request to admit an interactive one)
//                        and stamps shed responses with a retry_after_ms
//                        hint sized from the smoothed service latency and
//                        current backlog.
//
//   BrownoutController   Quality ladder driven by the SLO burn state
//                        (obs::SloMonitor). Sustained kBreach steps the
//                        serving mode down one rung at a time —
//                        exact -> ivf -> quantized -> cache/popularity
//                        only — and recovery steps back up only after the
//                        SLO has held kOk for `step_up_hold_us`
//                        (hysteresis: stepping down is fast, stepping up
//                        is deliberate, so the ladder cannot flap on the
//                        boundary of a burn window). The live rung is the
//                        serve.overload.brownout_level gauge and is
//                        recorded per-request in RequestContext / the
//                        access log.
//
// RecommendService owns one of each and wires them into Submit()
// admission, worker dequeue, and Recommend() mode resolution.

#ifndef LAYERGCN_SERVE_OVERLOAD_H_
#define LAYERGCN_SERVE_OVERLOAD_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

#include "obs/slo.h"

namespace layergcn::serve {

// --- Priority classes --------------------------------------------------

/// Admission priority, highest first. Shedding walks the classes from the
/// bottom: background is dropped before batch, batch before interactive.
enum class Priority {
  kInteractive = 0,
  kBatch = 1,
  kBackground = 2,
};
inline constexpr int kNumPriorities = 3;

const char* PriorityName(Priority priority);
/// Parses "interactive" / "batch" / "background"; false on anything else.
bool ParsePriority(const std::string& name, Priority* out);

// --- Adaptive concurrency limiter --------------------------------------

/// Thread-safe AIMD concurrency limiter. limit() is a lock-free read on
/// the admission path; OnComplete()/OnExpired() take a mutex (one call per
/// finished request).
class AdaptiveLimiter {
 public:
  struct Options {
    /// Limit at startup, clamped into [min_limit, max_limit].
    int64_t initial_limit = 8;
    int64_t min_limit = 1;
    int64_t max_limit = 512;
    /// Completions slower than this are congestion signals.
    uint64_t latency_target_us = 50'000;
    /// Multiplicative decrease on congestion (0 < factor < 1).
    double decrease_factor = 0.7;
    /// At most one multiplicative decrease per this window — one slow
    /// burst is one signal, not limit^-N.
    uint64_t decrease_cooldown_us = 20'000;
    /// Good completions per additive +1.
    int64_t increase_every = 16;
  };

  AdaptiveLimiter();  // default Options
  explicit AdaptiveLimiter(const Options& options);

  /// Current concurrency limit (admission reads this lock-free).
  int64_t limit() const { return limit_.load(std::memory_order_relaxed); }

  /// Accounts one finished request: `latency_us` is submit-to-finish (the
  /// queue wait is the signal AIMD needs), `congested` marks outcomes that
  /// are overload symptoms regardless of latency (deadline partial /
  /// deadline error).
  void OnComplete(uint64_t now_us, uint64_t latency_us, bool congested);

  /// A request expired while queued — the strongest congestion signal; an
  /// immediate multiplicative decrease (subject to the cooldown).
  void OnExpired(uint64_t now_us);

  /// EWMA of completion latency (for retry_after_ms hints).
  uint64_t smoothed_latency_us() const {
    return ewma_us_.load(std::memory_order_relaxed);
  }

  int64_t decreases() const { return decreases_.load(std::memory_order_relaxed); }
  int64_t increases() const { return increases_.load(std::memory_order_relaxed); }
  const Options& options() const { return options_; }

 private:
  void CongestionLocked(uint64_t now_us);  // mu_ held

  const Options options_;
  std::atomic<int64_t> limit_;
  std::atomic<uint64_t> ewma_us_{0};
  std::atomic<int64_t> decreases_{0};
  std::atomic<int64_t> increases_{0};
  std::mutex mu_;
  uint64_t last_decrease_us_ = 0;
  int64_t good_streak_ = 0;
};

// --- Brownout ladder ----------------------------------------------------

/// Serving-quality rungs, cheapest last. Each level implies the ones above
/// it (kQuantized also serves from the index when one exists).
enum class BrownoutLevel {
  kNone = 0,       // exact / configured serving mode
  kIvf = 1,        // force index retrieval (candidate subset)
  kQuantized = 2,  // force the cheapest quantized encoding too
  kCacheOnly = 3,  // cache hits and popularity fallback only
};
inline constexpr int kNumBrownoutLevels = 4;

const char* BrownoutLevelName(BrownoutLevel level);

/// Thread-safe hysteresis ladder over SLO burn states.
class BrownoutController {
 public:
  struct Options {
    bool enabled = false;
    /// Deepest rung the ladder may reach (0..3).
    int max_level = 3;
    /// Minimum dwell between consecutive downward steps — one sustained
    /// breach walks the ladder rung by rung, not straight to the bottom.
    uint64_t step_down_hold_us = 250'000;
    /// Continuous kOk required per upward step. Much longer than the
    /// downward hold: recovery must be proven, not glimpsed.
    uint64_t step_up_hold_us = 2'000'000;
  };

  BrownoutController();  // default Options
  explicit BrownoutController(const Options& options);

  /// Feeds the current SLO state at `now_us` and returns the (possibly
  /// stepped) level. kBreach steps down one rung per step_down_hold_us;
  /// kWarn holds; kOk held continuously for step_up_hold_us steps up one
  /// rung (and restarts the hold, so full recovery takes one hold per
  /// rung). Disabled controllers always return kNone.
  BrownoutLevel OnSloState(obs::SloMonitor::State state, uint64_t now_us);

  BrownoutLevel level() const {
    return static_cast<BrownoutLevel>(
        level_.load(std::memory_order_relaxed));
  }
  /// Level changes in either direction since construction.
  int64_t transitions() const {
    return transitions_.load(std::memory_order_relaxed);
  }
  const Options& options() const { return options_; }

 private:
  void SetLevelLocked(int level, uint64_t now_us);  // mu_ held

  const Options options_;
  std::atomic<int> level_{0};
  std::atomic<int64_t> transitions_{0};
  std::mutex mu_;
  uint64_t last_step_us_ = 0;
  uint64_t ok_since_us_ = 0;
};

// --- Service wiring ------------------------------------------------------

struct OverloadOptions {
  /// Adaptive concurrency on: the limiter replaces the static bound as the
  /// number of requests scored concurrently; queue_capacity still bounds
  /// total backlog (queued + executing).
  bool adaptive = false;
  /// Static concurrency cap when not adaptive; 0 = queue_capacity (the
  /// pre-limiter behavior: everything admitted is dispatched at once).
  int64_t fixed_limit = 0;
  AdaptiveLimiter::Options limiter;
  BrownoutController::Options brownout;
};

/// Point-in-time overload snapshot for HealthReporter / tests.
struct OverloadState {
  bool adaptive = false;
  int64_t limit = 0;
  int64_t executing = 0;
  int64_t queued[kNumPriorities] = {0, 0, 0};
  BrownoutLevel brownout = BrownoutLevel::kNone;
  int64_t brownout_transitions = 0;
  uint64_t smoothed_latency_us = 0;
};

}  // namespace layergcn::serve

#endif  // LAYERGCN_SERVE_OVERLOAD_H_
