// IVF-style coarse quantization index over the snapshot's item embeddings.
//
// Scoring one request against every item is O(num_items * dim) no matter
// how fast the kernel is — the scaling wall is the size of the item scan,
// not its speed. The production answer (PinSage-style two-stage retrieval)
// is a cheap candidate-generation tier: cluster the items once at snapshot
// load with k-means (the "inverted file" coarse quantizer), and per request
// score the user only against the cell centroids (a tiny GEMV), probe the
// top `nprobe` cells, and re-rank their members exactly with the existing
// fused/quantized kernels. Retrieval quality is a pure inner-product
// problem over the final fused LayerGCN embeddings, so the index needs no
// training state — just the f32 item matrix.
//
// Layout: centroids are a dense cells x dim matrix; cell membership is
// CSR-style — `cell_offsets` (cells + 1 entries) into `cell_items`, which
// holds every item id exactly once, grouped by cell and sorted ascending
// within each cell. Ascending order matters: the candidate re-rank walks
// each user's sorted exclusion list with the same monotone cursor the full
// kernels use.
//
// Determinism: the index is a pure function of (item matrix, options).
// Seeded init draws the starting centroids with
// util::UniformSampleWithoutReplacement; Lloyd runs a fixed number of
// iterations; the assignment step is a pure per-item map (parallelized
// with util::parallel::For, whose block partition is worker-count-
// independent) with ties broken toward the lowest cell id; the centroid
// update accumulates serially in ascending item order. Every step is
// bit-identical at 1, 2, or N threads, so two replicas loading the same
// snapshot build the same index and serve the same rankings.

#ifndef LAYERGCN_SERVE_ITEM_INDEX_H_
#define LAYERGCN_SERVE_ITEM_INDEX_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "tensor/matrix.h"
#include "util/status.h"

namespace layergcn::serve {

/// How a request's candidate set is formed: kExact scans every item (the
/// bit-exact reference path), kIvf probes the item index and re-ranks only
/// the gathered candidates.
enum class RetrievalMode { kExact, kIvf };

const char* RetrievalModeName(RetrievalMode mode);

/// Parses "exact" / "ivf". Returns false on anything else.
bool ParseRetrievalMode(const std::string& name, RetrievalMode* out);

struct ItemIndexOptions {
  /// Target cell count (clamped to [1, num_items] at build time). With
  /// `nprobe` cells probed per request, the expected candidate count is
  /// roughly nprobe * num_items / cells — size `cells` so that lands in
  /// the ~1-4k range for the catalog being served.
  int32_t cells = 64;
  /// Fixed Lloyd iteration count (no convergence test: a data-dependent
  /// stop would make the build time — though not the result — vary).
  int32_t iterations = 10;
  /// Seed for the k-means init draw.
  uint64_t seed = 0x1e5u;
};

/// Immutable coarse-quantization index over one snapshot's item matrix.
/// Built once at snapshot load; every accessor is safe to call
/// concurrently.
class ItemIndex {
 public:
  /// Runs seeded k-means over `item_emb` and freezes the result. Fails
  /// (without touching the snapshot) when the matrix is empty or carries
  /// non-finite values — and at the `serve.index_build_fail` fault point,
  /// which tests arm to exercise the exact-serving fallback.
  static util::StatusOr<std::shared_ptr<const ItemIndex>> Build(
      const tensor::Matrix& item_emb, const ItemIndexOptions& options);

  int32_t cells() const { return cells_; }
  int64_t num_items() const { return num_items_; }
  int64_t dim() const { return centroids_.cols(); }
  /// Cells that ended the build with no members (their centroids are the
  /// frozen value of the last iteration that owned items, or the init).
  int32_t empty_cells() const { return empty_cells_; }
  /// Wall-clock microseconds the k-means build took.
  uint64_t build_us() const { return build_us_; }
  int32_t iterations() const { return iterations_; }

  const tensor::Matrix& centroids() const { return centroids_; }

  /// Item ids of cell `c`, sorted ascending.
  const int32_t* cell_begin(int32_t c) const {
    return cell_items_.data() + cell_offsets_[static_cast<size_t>(c)];
  }
  int64_t cell_size(int32_t c) const {
    return cell_offsets_[static_cast<size_t>(c) + 1] -
           cell_offsets_[static_cast<size_t>(c)];
  }

  /// The `nprobe` cells with the highest user-centroid inner product,
  /// ordered by (score desc, cell id asc). `nprobe` is clamped to
  /// [1, cells]; `user_row` must have dim() components. Deterministic: the
  /// tie-break makes the probe set and order a total function of the
  /// scores.
  void TopCells(const float* user_row, int32_t nprobe,
                std::vector<int32_t>* out) const;

  /// Every item of every cell in `probe_cells`, merged and sorted
  /// ascending (cells are disjoint, so the result has no duplicates).
  void GatherCandidates(const std::vector<int32_t>& probe_cells,
                        std::vector<int32_t>* out) const;

 private:
  ItemIndex() = default;

  int32_t cells_ = 0;
  int64_t num_items_ = 0;
  int32_t empty_cells_ = 0;
  int32_t iterations_ = 0;
  uint64_t build_us_ = 0;
  tensor::Matrix centroids_;            // cells x dim
  std::vector<int64_t> cell_offsets_;   // cells + 1
  std::vector<int32_t> cell_items_;     // num_items, grouped by cell
};

}  // namespace layergcn::serve

#endif  // LAYERGCN_SERVE_ITEM_INDEX_H_
