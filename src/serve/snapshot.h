// Immutable model snapshots and the directory store that hot-swaps them.
//
// Serving never touches training state: a snapshot is the fixed final
// user/item embedding matrices (PAPER.md Eq. 7 makes inference a pair of
// matrix lookups plus a dot product) together with the per-user training
// histories used as exclusion lists and as the popularity source for
// degraded mode. Snapshots are loaded from the checkpoint-v2 serving
// export (train/checkpoint.h) — per-section CRCs make corruption a
// structured DataLoss, never UB.
//
// SnapshotStore manages a directory of snap-NNNNNN.lgcn files. Reload()
// loads the newest file that validates, falling back version by version
// across the directory when the newest is torn or bit-flipped (counted as
// serve.snapshot_fallbacks), and publishes the result with an atomic
// shared_ptr swap: requests in flight keep the snapshot they started with,
// new requests see the new one, and a failed reload leaves the previous
// snapshot serving.

#ifndef LAYERGCN_SERVE_SNAPSHOT_H_
#define LAYERGCN_SERVE_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "serve/item_index.h"
#include "tensor/matrix.h"
#include "tensor/quant.h"
#include "util/status.h"

namespace layergcn::serve {

/// A fully validated, immutable in-memory model snapshot. Construction
/// goes through Load(); every accessor is safe to call concurrently.
class ModelSnapshot {
 public:
  /// Reads a serving export and precomputes the popularity ranking.
  /// Corruption and shape problems surface as the underlying
  /// LoadServingExport status (DataLoss / NotFound / ...).
  ///
  /// When `index_options` is non-null, an ItemIndex (IVF coarse quantizer
  /// for two-stage retrieval) is built over the item embeddings as part of
  /// the load. An index build failure does NOT fail the load: the snapshot
  /// publishes without an index (has_index() == false, counted as
  /// serve.retrieval.index_build_failures) and the service falls back to
  /// exact retrieval per request — degraded throughput beats refusing a
  /// valid model.
  static util::StatusOr<std::shared_ptr<const ModelSnapshot>> Load(
      const std::string& path,
      const ItemIndexOptions* index_options = nullptr);

  int64_t version() const { return version_; }
  int64_t num_users() const { return user_emb_.rows(); }
  int64_t num_items() const { return item_emb_.rows(); }
  int64_t dim() const { return user_emb_.cols(); }

  const tensor::Matrix& user_emb() const { return user_emb_; }
  const tensor::Matrix& item_emb() const { return item_emb_; }

  /// Quantized embedding copies, present when the serving export carried
  /// valid int8 / bf16 sections. Item sides are pre-transposed to
  /// depth-major panels at load time so the quantized kernels do zero
  /// per-request data movement. A snapshot whose quant sections were
  /// corrupt or absent simply reports has_int8()/has_bf16() == false and
  /// serves from the f32 reference.
  bool has_int8() const { return has_int8_; }
  bool has_bf16() const { return has_bf16_; }
  const tensor::Int8Rows& user_int8() const { return user_int8_; }
  const tensor::Int8Panel& item_int8_panel() const { return item_int8_panel_; }
  const tensor::Bf16Rows& user_bf16() const { return user_bf16_; }
  const tensor::Bf16Panel& item_bf16_panel() const { return item_bf16_panel_; }

  /// Sorted-ascending training items per user id (exclusion lists).
  const std::vector<std::vector<int32_t>>& user_history() const {
    return user_history_;
  }

  /// Every item id ordered by (training interaction count desc, id asc) —
  /// the ranking degraded mode serves when model scoring is unavailable.
  const std::vector<int32_t>& popular_items() const { return popular_items_; }

  /// Training interaction count per item id (the popularity "score").
  const std::vector<int64_t>& item_counts() const { return item_counts_; }

  /// The IVF candidate-generation index, when the load was asked to build
  /// one and the build succeeded.
  bool has_index() const { return index_ != nullptr; }
  const ItemIndex& item_index() const { return *index_; }

 private:
  ModelSnapshot() = default;

  int64_t version_ = 0;
  tensor::Matrix user_emb_;
  tensor::Matrix item_emb_;
  std::vector<std::vector<int32_t>> user_history_;
  std::vector<int32_t> popular_items_;
  std::vector<int64_t> item_counts_;

  bool has_int8_ = false;
  bool has_bf16_ = false;
  tensor::Int8Rows user_int8_;
  tensor::Int8Panel item_int8_panel_;
  tensor::Bf16Rows user_bf16_;
  tensor::Bf16Panel item_bf16_panel_;
  std::shared_ptr<const ItemIndex> index_;
};

/// Directory of versioned snapshot files with newest-valid loading and
/// atomic hot-swap publication. Thread-safe.
class SnapshotStore {
 public:
  explicit SnapshotStore(std::string dir) : dir_(std::move(dir)) {}

  const std::string& dir() const { return dir_; }

  /// The file name used for snapshot `version`: dir/snap-NNNNNN.lgcn.
  static std::string SnapshotPath(const std::string& dir, int64_t version);

  /// (version, path) of every well-named snapshot file, ascending version.
  static std::vector<std::pair<int64_t, std::string>> ListSnapshots(
      const std::string& dir);

  /// Asks future Reload()s to build an ItemIndex with these options as
  /// part of every snapshot load (call before Reload; does not rebuild the
  /// currently published snapshot's index).
  void SetIndexOptions(const ItemIndexOptions& options);

  /// Loads the newest snapshot that validates end-to-end, skipping corrupt
  /// files newest-first (each skip increments serve.snapshot_fallbacks),
  /// and swaps it in. When every file fails — or the directory is empty —
  /// the previous snapshot (if any) keeps serving and the error is
  /// returned. Re-loading the already-current version is a cheap no-op.
  util::Status Reload();

  /// The currently published snapshot; nullptr before the first successful
  /// Reload(). The returned shared_ptr keeps the snapshot alive across a
  /// concurrent hot-swap.
  std::shared_ptr<const ModelSnapshot> current() const;

  /// obs::NowMicros() timestamp of the last publication (0 before the
  /// first). Health reporting derives snapshot age from this.
  uint64_t published_at_us() const;

  /// Retention: deletes snapshot files beyond the newest `keep` *valid*
  /// ones (each candidate is CRC-validated before it counts toward the
  /// quota, so corrupt files never shield good history from the fallback
  /// walk). The currently serving version is never deleted regardless of
  /// age. Returns the number of files removed (also counted as
  /// serve.snapshots_pruned).
  int64_t Retain(int keep);

 private:
  std::string dir_;
  mutable std::mutex mu_;
  std::shared_ptr<const ModelSnapshot> current_;
  uint64_t published_at_us_ = 0;
  bool build_index_ = false;
  ItemIndexOptions index_options_;
};

}  // namespace layergcn::serve

#endif  // LAYERGCN_SERVE_SNAPSHOT_H_
