#include "serve/snapshot.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "obs/metrics.h"
#include "train/checkpoint.h"
#include "util/logging.h"
#include "util/strings.h"

namespace layergcn::serve {
namespace {

namespace fs = std::filesystem;

}  // namespace

util::StatusOr<std::shared_ptr<const ModelSnapshot>> ModelSnapshot::Load(
    const std::string& path, const ItemIndexOptions* index_options) {
  util::StatusOr<train::ServingExport> loaded =
      train::LoadServingExport(path);
  if (!loaded.ok()) return loaded.status();
  train::ServingExport& ex = loaded.value();

  // Private constructor: build in place, then freeze behind const.
  std::shared_ptr<ModelSnapshot> snap(new ModelSnapshot());
  snap->version_ = ex.version;
  snap->user_emb_ = std::move(ex.user_emb);
  snap->item_emb_ = std::move(ex.item_emb);
  snap->user_history_ = std::move(ex.user_history);

  // Quantized copies: keep user rows row-major (one row gathered per
  // request) and transpose item rows to depth-major panels once, here, so
  // the quantized kernels stream items with unit stride and never pay a
  // per-request transpose. A dropped (corrupt / truncated / stale-shape)
  // quant section degrades this snapshot to f32-only — counted so
  // operators can see quantized serving silently disabled itself.
  if (ex.quant_dropped) {
    OBS_COUNT("serve.snapshot_fallbacks", 1);
    LAYERGCN_LOG(kWarning) << path << ": quantized sections dropped; "
                           << "serving falls back to f32";
  }
  if (ex.has_int8) {
    snap->has_int8_ = true;
    snap->item_int8_panel_ = tensor::TransposeToPanel(ex.item_int8);
    snap->user_int8_ = std::move(ex.user_int8);
  }
  if (ex.has_bf16) {
    snap->has_bf16_ = true;
    snap->item_bf16_panel_ = tensor::TransposeToPanel(ex.item_bf16);
    snap->user_bf16_ = std::move(ex.user_bf16);
  }

  // Popularity ranking for degraded mode: items by (training interaction
  // count desc, id asc). The tie-break makes the ranking a total order, so
  // degraded responses are deterministic.
  const int64_t num_items = snap->item_emb_.rows();
  snap->item_counts_.assign(static_cast<size_t>(num_items), 0);
  for (const std::vector<int32_t>& hist : snap->user_history_) {
    for (int32_t item : hist) {
      ++snap->item_counts_[static_cast<size_t>(item)];
    }
  }
  snap->popular_items_.resize(static_cast<size_t>(num_items));
  for (int64_t i = 0; i < num_items; ++i) {
    snap->popular_items_[static_cast<size_t>(i)] = static_cast<int32_t>(i);
  }
  const std::vector<int64_t>& counts = snap->item_counts_;
  std::sort(snap->popular_items_.begin(), snap->popular_items_.end(),
            [&counts](int32_t a, int32_t b) {
              const int64_t ca = counts[static_cast<size_t>(a)];
              const int64_t cb = counts[static_cast<size_t>(b)];
              return ca != cb ? ca > cb : a < b;
            });

  // IVF retrieval index, when asked for. A failed build never rejects the
  // snapshot — the service serves exact per request until a later reload
  // succeeds — but it is logged and counted so operators see two-stage
  // retrieval silently running in fallback.
  if (index_options != nullptr) {
    util::StatusOr<std::shared_ptr<const ItemIndex>> index =
        ItemIndex::Build(snap->item_emb_, *index_options);
    if (index.ok()) {
      snap->index_ = std::move(index).value();
    } else {
      OBS_COUNT("serve.retrieval.index_build_failures", 1);
      LAYERGCN_LOG(kWarning)
          << path << ": item index build failed ("
          << index.status().ToString() << "); serving exact retrieval";
    }
  }

  OBS_COUNT("serve.snapshot_loads", 1);
  return std::shared_ptr<const ModelSnapshot>(std::move(snap));
}

std::string SnapshotStore::SnapshotPath(const std::string& dir,
                                        int64_t version) {
  return dir + "/" +
         util::StrFormat("snap-%06lld.lgcn", static_cast<long long>(version));
}

std::vector<std::pair<int64_t, std::string>> SnapshotStore::ListSnapshots(
    const std::string& dir) {
  std::vector<std::pair<int64_t, std::string>> out;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    int64_t version = 0;
    if (name.size() == 16 && util::StartsWith(name, "snap-") &&
        name.compare(11, 5, ".lgcn") == 0 &&
        util::ParseInt64(name.substr(5, 6), &version)) {
      out.emplace_back(version, entry.path().string());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

void SnapshotStore::SetIndexOptions(const ItemIndexOptions& options) {
  std::lock_guard<std::mutex> lock(mu_);
  build_index_ = true;
  index_options_ = options;
}

util::Status SnapshotStore::Reload() {
  OBS_COUNT("serve.reloads", 1);
  bool build_index;
  ItemIndexOptions index_options;
  {
    std::lock_guard<std::mutex> lock(mu_);
    build_index = build_index_;
    index_options = index_options_;
  }
  const std::vector<std::pair<int64_t, std::string>> files =
      ListSnapshots(dir_);
  if (files.empty()) {
    OBS_COUNT("serve.reload_failures", 1);
    return util::NotFoundError("no snapshots in " + dir_);
  }

  const std::shared_ptr<const ModelSnapshot> previous = current();
  for (auto it = files.rbegin(); it != files.rend(); ++it) {
    // Already serving this version (or something newer a racing reload
    // published): the serving snapshot is at least as new as anything
    // valid on disk, so the reload is a no-op.
    if (previous != nullptr && previous->version() >= it->first) {
      return util::OkStatus();
    }

    util::StatusOr<std::shared_ptr<const ModelSnapshot>> snap =
        ModelSnapshot::Load(it->second,
                            build_index ? &index_options : nullptr);
    if (snap.ok()) {
      if (it != files.rbegin()) {
        LAYERGCN_LOG(kWarning)
            << "fell back to snapshot " << it->second << " ("
            << std::distance(files.rbegin(), it) << " newer corrupt)";
      }
      std::lock_guard<std::mutex> lock(mu_);
      current_ = std::move(snap).value();
      published_at_us_ = obs::NowMicros();
      OBS_GAUGE("serve.snapshot_version",
                static_cast<double>(current_->version()));
      return util::OkStatus();
    }
    LAYERGCN_LOG(kWarning) << "skipping corrupt snapshot " << it->second
                           << ": " << snap.status().ToString();
    OBS_COUNT("serve.snapshot_fallbacks", 1);
  }

  if (previous != nullptr) {
    // Every file newer than the serving snapshot failed; keep serving it.
    // Still an error so callers know the reload did not advance.
    OBS_COUNT("serve.reload_failures", 1);
    return util::DataLossError(
        "no valid snapshot newer than serving version " +
        std::to_string(previous->version()) + " in " + dir_);
  }
  OBS_COUNT("serve.reload_failures", 1);
  return util::NotFoundError("no valid snapshot in " + dir_ + " (" +
                             std::to_string(files.size()) +
                             " corrupt files skipped)");
}

int64_t SnapshotStore::Retain(int keep) {
  keep = std::max(1, keep);
  const std::vector<std::pair<int64_t, std::string>> files =
      ListSnapshots(dir_);
  const std::shared_ptr<const ModelSnapshot> serving = current();
  const int64_t serving_version =
      serving != nullptr ? serving->version() : -1;

  // Walk newest-first, CRC-validating each file; the first `keep` that
  // validate are the retention set. Corrupt files do not count toward the
  // quota (they are dead weight the fallback walk would skip anyway), so
  // a run of torn publishes can never evict the good history behind them.
  int valid_kept = 0;
  int64_t pruned = 0;
  for (auto it = files.rbegin(); it != files.rend(); ++it) {
    if (valid_kept < keep) {
      if (train::ValidateCheckpoint(it->second).ok()) ++valid_kept;
      continue;
    }
    if (it->first == serving_version) continue;
    if (std::remove(it->second.c_str()) == 0) {
      ++pruned;
      OBS_COUNT("serve.snapshots_pruned", 1);
    }
  }
  if (pruned > 0) {
    LAYERGCN_LOG(kInfo) << "snapshot retention pruned " << pruned
                        << " files from " << dir_ << " (keep " << keep
                        << " valid)";
  }
  return pruned;
}

std::shared_ptr<const ModelSnapshot> SnapshotStore::current() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

uint64_t SnapshotStore::published_at_us() const {
  std::lock_guard<std::mutex> lock(mu_);
  return published_at_us_;
}

}  // namespace layergcn::serve
