#include "serve/health.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <utility>

#include "obs/json.h"
#include "obs/obs.h"
#include "obs/slo.h"
#include "util/logging.h"

namespace layergcn::serve {
namespace {

const char* BreakerStateName(CircuitBreaker::State state) {
  switch (state) {
    case CircuitBreaker::State::kClosed: return "closed";
    case CircuitBreaker::State::kOpen: return "open";
    case CircuitBreaker::State::kHalfOpen: return "half_open";
  }
  return "unknown";
}

// Torn-read-proof file replacement: readers polling the status file see
// either the previous complete document or the new one, never a prefix.
bool AtomicWrite(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out.good()) return false;
    out << content;
    if (!out.good()) return false;
  }
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

}  // namespace

HealthReporter::HealthReporter(const SnapshotStore* store,
                               const RecommendService* service,
                               Options options)
    : store_(store), service_(service), options_(std::move(options)) {
  LAYERGCN_CHECK(store_ != nullptr);
  LAYERGCN_CHECK(service_ != nullptr);
}

HealthReporter::~HealthReporter() { Stop(); }

bool HealthReporter::SnapshotStale(uint64_t now_us) const {
  bool stale = false;
  if (options_.max_snapshot_age_us > 0 && store_->current() != nullptr) {
    const uint64_t published = store_->published_at_us();
    stale = now_us > published &&
            now_us - published > options_.max_snapshot_age_us;
  }
  OBS_GAUGE("serve.snapshot_stale", stale ? 1 : 0);
  return stale;
}

std::string HealthReporter::StatusString(uint64_t now_us) const {
  const std::shared_ptr<const ModelSnapshot> snap = store_->current();
  if (snap == nullptr) return "unready";
  const bool breaker_open =
      service_->breaker().state() == CircuitBreaker::State::kOpen;
  const bool slo_breach =
      service_->stats().slo().state() == obs::SloMonitor::State::kBreach;
  // A browned-out service is answering, but below its configured quality —
  // that is "degraded" even after the burn subsides, until the ladder has
  // stepped all the way back up.
  const bool browned_out =
      service_->brownout().level() != BrownoutLevel::kNone;
  if (breaker_open || slo_breach || browned_out || SnapshotStale(now_us)) {
    return "degraded";
  }
  return "ok";
}

std::string HealthReporter::StatusJson(uint64_t now_us) {
  const std::shared_ptr<const ModelSnapshot> snap = store_->current();
  const ServingStats& stats = service_->stats();
  const obs::SloMonitor::Burn burn = stats.slo().BurnRates(now_us);
  const obs::MetricsSnapshot metrics = obs::MetricsRegistry::Global().Snapshot();

  // Per-second counter rates since the previous write.
  double dt_s = 0.0;
  obs::MetricsSnapshot baseline;
  {
    std::lock_guard<std::mutex> lock(rate_mu_);
    if (has_baseline_ && now_us > last_write_us_) {
      dt_s = static_cast<double>(now_us - last_write_us_) / 1e6;
      baseline = std::move(last_snapshot_);
    }
    last_snapshot_ = metrics;
    last_write_us_ = now_us;
    has_baseline_ = true;
  }
  const auto rate = [&](const char* name) {
    if (dt_s <= 0.0) return 0.0;
    return static_cast<double>(metrics.CounterDelta(baseline, name)) / dt_s;
  };
  const uint64_t hits =
      metrics.CounterDelta(baseline, "serve.score_cache_hits");
  const uint64_t misses =
      metrics.CounterDelta(baseline, "serve.score_cache_misses");
  const double hit_rate =
      hits + misses > 0
          ? static_cast<double>(hits) / static_cast<double>(hits + misses)
          : 0.0;

  obs::JsonWriter w;
  w.BeginObject();
  w.Key("status").String(StatusString(now_us));
  w.Key("now_us").Uint(now_us);
  w.Key("snapshot").BeginObject();
  w.Key("loaded").Bool(snap != nullptr);
  if (snap != nullptr) {
    const uint64_t published = store_->published_at_us();
    w.Key("version").Int(snap->version());
    w.Key("published_at_us").Uint(published);
    w.Key("age_us").Uint(now_us > published ? now_us - published : 0);
    if (options_.max_snapshot_age_us > 0) {
      w.Key("max_age_us").Uint(options_.max_snapshot_age_us);
      w.Key("stale").Bool(SnapshotStale(now_us));
    }
    w.Key("num_users").Int(snap->num_users());
    w.Key("num_items").Int(snap->num_items());
    w.Key("index").BeginObject();
    w.Key("built").Bool(snap->has_index());
    if (snap->has_index()) {
      const ItemIndex& index = snap->item_index();
      w.Key("cells").Int(index.cells());
      w.Key("empty_cells").Int(index.empty_cells());
      w.Key("iterations").Int(index.iterations());
      w.Key("build_us").Uint(index.build_us());
    }
    w.EndObject();
  }
  w.EndObject();
  w.Key("breaker").String(BreakerStateName(service_->breaker().state()));
  w.Key("queue_depth").Int(service_->in_flight());
  w.Key("queue_capacity").Int(service_->options().queue_capacity);
  {
    const OverloadState overload = service_->overload_state();
    w.Key("overload").BeginObject();
    w.Key("adaptive").Bool(overload.adaptive);
    w.Key("limit").Int(overload.limit);
    w.Key("executing").Int(overload.executing);
    w.Key("queued").BeginObject();
    for (int cls = 0; cls < kNumPriorities; ++cls) {
      w.Key(PriorityName(static_cast<Priority>(cls)))
          .Int(overload.queued[cls]);
    }
    w.EndObject();
    w.Key("brownout").String(BrownoutLevelName(overload.brownout));
    w.Key("brownout_transitions").Int(overload.brownout_transitions);
    w.Key("smoothed_latency_us").Uint(overload.smoothed_latency_us);
    w.Key("expired_per_sec").Number(rate("serve.expired_in_queue"));
    w.EndObject();
  }
  w.Key("slo").BeginObject();
  w.Key("state").String(obs::SloMonitor::StateName(stats.slo().state()));
  w.Key("transitions").Int(stats.slo().transitions());
  w.Key("burn_short").Number(burn.max_short);
  w.Key("burn_long").Number(burn.max_long);
  w.Key("requests_long_window").Uint(burn.total_long);
  w.EndObject();
  w.Key("rates").BeginObject();
  w.Key("requests_per_sec").Number(rate("serve.requests"));
  w.Key("shed_per_sec").Number(rate("serve.shed"));
  w.Key("degraded_per_sec").Number(rate("serve.degraded"));
  w.Key("malformed_per_sec").Number(rate("serve.malformed_requests"));
  w.Key("encoding_fallbacks_per_sec").Number(rate("serve.encoding_fallbacks"));
  w.Key("cache_hit_rate").Number(hit_rate);
  w.EndObject();
  w.Key("retrieval").BeginObject();
  w.Key("ivf_per_sec").Number(rate("serve.retrieval.requests"));
  w.Key("exact_fallbacks_per_sec")
      .Number(rate("serve.retrieval.exact_fallbacks"));
  w.Key("cells_probed").Uint(
      metrics.CounterDelta(obs::MetricsSnapshot{},
                           "serve.retrieval.cells_probed"));
  w.Key("candidates_scored").Uint(
      metrics.CounterDelta(obs::MetricsSnapshot{},
                           "serve.retrieval.candidates_scored"));
  {
    const auto gauge = metrics.gauges.find("serve.retrieval.recall_sample");
    if (gauge != metrics.gauges.end()) {
      w.Key("recall_sample").Number(gauge->second);
    }
  }
  w.EndObject();
  w.Key("requests_recorded").Uint(stats.recorded());
  w.EndObject();
  return w.str();
}

bool HealthReporter::WriteNow(uint64_t now_us) {
  bool ok = true;
  if (!options_.status_path.empty()) {
    ok = AtomicWrite(options_.status_path, StatusJson(now_us) + "\n") && ok;
  }
  if (!options_.prom_path.empty()) {
    ok = obs::MetricsRegistry::Global().WritePrometheusText(
             options_.prom_path) &&
         ok;
  }
  if (ok) writes_.fetch_add(1, std::memory_order_relaxed);
  return ok;
}

void HealthReporter::Start() {
  std::lock_guard<std::mutex> lock(thread_mu_);
  if (thread_.joinable()) return;
  stopping_ = false;
  thread_ = std::thread([this] { RunLoop(); });
}

void HealthReporter::RunLoop() {
  std::unique_lock<std::mutex> lock(thread_mu_);
  while (!stopping_) {
    stop_cv_.wait_for(lock, std::chrono::microseconds(options_.period_us),
                      [this] { return stopping_; });
    if (stopping_) break;
    lock.unlock();
    WriteNow(obs::NowMicros());
    lock.lock();
  }
}

void HealthReporter::Stop() {
  {
    std::lock_guard<std::mutex> lock(thread_mu_);
    if (!thread_.joinable()) return;
    stopping_ = true;
  }
  stop_cv_.notify_all();
  thread_.join();
  {
    std::lock_guard<std::mutex> lock(thread_mu_);
    thread_ = std::thread();
  }
  // Final write so the file reflects end-of-run state.
  WriteNow(obs::NowMicros());
}

}  // namespace layergcn::serve
