#include "serve/serving_stats.h"

#include <algorithm>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/obs.h"
#include "util/logging.h"

namespace layergcn::serve {
namespace {

ServingStatsOptions Sanitize(ServingStatsOptions options) {
  options.gauge_update_every = std::max(options.gauge_update_every, 1);
  return options;
}

// Gauge names are composed at run time, so the OBS_GAUGE macro's static
// caching does not apply; registry lookups only happen on the every-N
// refresh, never on the per-request path.
obs::Gauge* StatGauge(const std::string& name) {
  return obs::MetricsRegistry::Global().GetGauge(name);
}

const std::vector<double>& GaugeQs() {
  static const std::vector<double>* qs =
      new std::vector<double>{0.50, 0.95, 0.99, 0.999};
  return *qs;
}

const char* const kQLabels[] = {"p50", "p95", "p99", "p999"};

}  // namespace

ServingStats::ServingStats() : ServingStats(ServingStatsOptions()) {}

ServingStats::ServingStats(const ServingStatsOptions& options)
    : options_(Sanitize(options)),
      latency_us_(options_.quantile),
      slo_(options_.slo) {
  for (int i = 0; i < kNumStages; ++i) {
    stage_us_[i] = std::make_unique<obs::SlidingQuantile>(options_.quantile);
  }
}

bool ServingStats::IsServerError(util::StatusCode code) {
  switch (code) {
    case util::StatusCode::kResourceExhausted:   // shed at the door
    case util::StatusCode::kDeadlineExceeded:    // nothing scored in budget
    case util::StatusCode::kFailedPrecondition:  // no snapshot to serve
    case util::StatusCode::kDataLoss:
    case util::StatusCode::kUnavailable:
    case util::StatusCode::kInternal:
      return true;
    case util::StatusCode::kOk:
    case util::StatusCode::kInvalidArgument:  // client's mistake
    case util::StatusCode::kNotFound:
    case util::StatusCode::kCancelled:
      return false;
  }
  return false;
}

void ServingStats::Record(const RequestContext& ctx, uint64_t now_us) {
  if (ctx.malformed) OBS_COUNT("serve.malformed_requests", 1);

  const bool answered = ctx.code == util::StatusCode::kOk;
  const uint64_t latency = ctx.total_us();
  if (answered) {
    for (int i = 0; i < kNumStages; ++i) {
      stage_us_[i]->Observe(ctx.stage_us[i], now_us);
    }
    latency_us_.Observe(latency, now_us);
  }
  slo_.Record(now_us, IsServerError(ctx.code), answered, latency);

  const uint64_t n = recorded_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (n % static_cast<uint64_t>(options_.gauge_update_every) == 0) {
    UpdateGauges(now_us);
  }
}

void ServingStats::UpdateGauges(uint64_t now_us) {
  if (obs::Enabled()) {
    for (int i = 0; i < kNumStages; ++i) {
      const std::vector<uint64_t> qs =
          stage_us_[i]->Quantiles(GaugeQs(), now_us);
      const std::string prefix =
          std::string("serve.stage.") + StageName(static_cast<Stage>(i));
      for (size_t j = 0; j < qs.size(); ++j) {
        StatGauge(prefix + "." + kQLabels[j] + "_us")
            ->Set(static_cast<double>(qs[j]));
      }
    }
    const std::vector<uint64_t> qs = latency_us_.Quantiles(GaugeQs(), now_us);
    for (size_t j = 0; j < qs.size(); ++j) {
      StatGauge(std::string("serve.latency.") + kQLabels[j] + "_us")
          ->Set(static_cast<double>(qs[j]));
    }
  }

  const obs::SloMonitor::State before = slo_.state();
  const obs::SloMonitor::State after = slo_.Update(now_us);
  if (after != before) {
    const obs::SloMonitor::Burn burn = slo_.BurnRates(now_us);
    LAYERGCN_LOG(kWarning) << "SLO state " << obs::SloMonitor::StateName(before)
                           << " -> " << obs::SloMonitor::StateName(after)
                           << " (burn short=" << burn.max_short
                           << " long=" << burn.max_long << " over "
                           << burn.total_long << " requests)";
  }
}

}  // namespace layergcn::serve
