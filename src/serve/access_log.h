// Structured per-request access log (JSONL).
//
// One line per request the driver finished — served, shed, errored, or
// malformed — so a run's access log has exactly one record per submitted
// request and operators can reconstruct any request's path through the
// service offline. Records are flat JSON objects with "type":"access";
// tools/validate_jsonl checks the schema (id uniqueness, status enum,
// stage-micros consistency) and check.sh runs it on every serve sweep.
//
// Appends take one mutex and one formatted write; the driver serializes
// responses on one thread, so the lock is uncontended in practice. Lines
// are flushed on Close()/destruction, not per record.

#ifndef LAYERGCN_SERVE_ACCESS_LOG_H_
#define LAYERGCN_SERVE_ACCESS_LOG_H_

#include <fstream>
#include <mutex>
#include <string>

#include "serve/request_context.h"

namespace layergcn::serve {

/// Thread-safe JSONL access-log sink.
class AccessLog {
 public:
  AccessLog() = default;
  ~AccessLog() { Close(); }

  AccessLog(const AccessLog&) = delete;
  AccessLog& operator=(const AccessLog&) = delete;

  /// Opens (truncates) `path` for writing. False on I/O failure.
  bool Open(const std::string& path);

  /// True between a successful Open() and Close().
  bool is_open() const;

  /// Appends one record; no-op when the log is not open. Counts
  /// serve.access_log_records.
  void Append(const RequestContext& ctx);

  /// Flushes and closes; false if any write failed.
  bool Close();

  /// One access record as a JSON object (no trailing newline) — the exact
  /// line Append() writes; exposed so tests can pin the schema.
  static std::string RecordJson(const RequestContext& ctx);

 private:
  mutable std::mutex mu_;
  std::ofstream out_;
  bool ok_ = true;
};

}  // namespace layergcn::serve

#endif  // LAYERGCN_SERVE_ACCESS_LOG_H_
