#include "serve/access_log.h"

#include "obs/json.h"
#include "obs/metrics.h"

namespace layergcn::serve {

bool AccessLog::Open(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (out_.is_open()) out_.close();
  out_.open(path, std::ios::trunc);
  ok_ = out_.good();
  return ok_;
}

bool AccessLog::is_open() const {
  std::lock_guard<std::mutex> lock(mu_);
  return out_.is_open();
}

void AccessLog::Append(const RequestContext& ctx) {
  const std::string line = RecordJson(ctx);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!out_.is_open()) return;
    out_ << line << "\n";
    ok_ = ok_ && out_.good();
  }
  OBS_COUNT("serve.access_log_records", 1);
}

bool AccessLog::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (out_.is_open()) {
    out_.flush();
    ok_ = ok_ && out_.good();
    out_.close();
  }
  return ok_;
}

std::string AccessLog::RecordJson(const RequestContext& ctx) {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("type").String("access");
  w.Key("id").Uint(ctx.id);
  w.Key("user").Int(ctx.user);
  w.Key("k").Int(ctx.k);
  w.Key("budget_us").Uint(ctx.budget_us);
  w.Key("priority").String(PriorityName(ctx.priority));
  w.Key("status").String(util::StatusCodeName(ctx.code));
  if (!ctx.error.empty()) w.Key("error").String(ctx.error);
  w.Key("malformed").Bool(ctx.malformed);
  w.Key("shed").Bool(ctx.shed);
  w.Key("expired").Bool(ctx.expired);
  w.Key("cached").Bool(ctx.cached);
  w.Key("partial").Bool(ctx.partial);
  w.Key("degraded").Bool(ctx.degraded);
  w.Key("brownout_level").Int(static_cast<int>(ctx.brownout));
  w.Key("retry_after_ms").Uint(ctx.retry_after_ms);
  w.Key("encoding").String(eval::ScoreEncodingName(ctx.encoding));
  w.Key("retrieval").String(RetrievalModeName(ctx.retrieval));
  w.Key("candidates").Int(ctx.candidates);
  w.Key("snapshot_version").Int(ctx.snapshot_version);
  w.Key("submit_us").Uint(ctx.submit_us);
  w.Key("done_us").Uint(ctx.done_us);
  w.Key("latency_us").Uint(ctx.total_us());
  for (int i = 0; i < kNumStages; ++i) {
    w.Key(std::string(StageName(static_cast<Stage>(i))) + "_us")
        .Uint(ctx.stage_us[i]);
  }
  w.EndObject();
  return w.str();
}

}  // namespace layergcn::serve
