#include "serve/item_index.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "obs/obs.h"
#include "util/fault_injection.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace layergcn::serve {

const char* RetrievalModeName(RetrievalMode mode) {
  switch (mode) {
    case RetrievalMode::kExact: return "exact";
    case RetrievalMode::kIvf: return "ivf";
  }
  return "?";
}

bool ParseRetrievalMode(const std::string& name, RetrievalMode* out) {
  if (name == "exact") { *out = RetrievalMode::kExact; return true; }
  if (name == "ivf") { *out = RetrievalMode::kIvf; return true; }
  return false;
}

util::StatusOr<std::shared_ptr<const ItemIndex>> ItemIndex::Build(
    const tensor::Matrix& item_emb, const ItemIndexOptions& options) {
  const uint64_t t0 = obs::NowMicros();
  const int64_t num_items = item_emb.rows();
  const int64_t dim = item_emb.cols();
  if (num_items == 0 || dim == 0) {
    return util::InvalidArgumentError("item matrix is empty");
  }
  if (util::fault::Fire("serve.index_build_fail")) {
    return util::InternalError("fault injected: serve.index_build_fail");
  }
  for (int64_t i = 0; i < num_items; ++i) {
    const float* row = item_emb.row(i);
    for (int64_t c = 0; c < dim; ++c) {
      if (!std::isfinite(row[c])) {
        return util::DataLossError(
            "non-finite item embedding at row " + std::to_string(i));
      }
    }
  }

  const int32_t cells = static_cast<int32_t>(std::min<int64_t>(
      std::max<int32_t>(options.cells, 1), num_items));
  const int32_t iterations = std::max<int32_t>(options.iterations, 1);

  std::shared_ptr<ItemIndex> index(new ItemIndex());
  index->cells_ = cells;
  index->num_items_ = num_items;
  index->iterations_ = iterations;

  // Seeded init: `cells` distinct item rows become the starting centroids.
  // The sample comes back sorted ascending, so centroid c is a pure
  // function of (seed, num_items, cells).
  util::Rng rng(options.seed);
  const std::vector<int64_t> init =
      util::UniformSampleWithoutReplacement(num_items, cells, &rng);
  index->centroids_ = tensor::Matrix(cells, dim);
  for (int32_t c = 0; c < cells; ++c) {
    const float* src = item_emb.row(init[static_cast<size_t>(c)]);
    float* dst = index->centroids_.row(c);
    for (int64_t p = 0; p < dim; ++p) dst[p] = src[p];
  }

  // Fixed-iteration Lloyd. Assignment is a pure per-item map (nearest
  // centroid by squared L2, ties to the lowest cell id) parallelized over
  // the worker-count-independent block partition; the centroid update is a
  // serial ascending-item accumulation — cheap next to the O(items x cells
  // x dim) assignment — so the whole build is bit-deterministic at any
  // thread count.
  std::vector<int32_t> assign(static_cast<size_t>(num_items), 0);
  std::vector<double> sums(static_cast<size_t>(cells) *
                           static_cast<size_t>(dim));
  std::vector<int64_t> counts(static_cast<size_t>(cells));
  const int64_t grain = std::max<int64_t>(
      1, util::parallel::kDefaultGrain / std::max<int64_t>(1, cells * dim));
  for (int32_t it = 0; it < iterations; ++it) {
    util::parallel::For(
        num_items,
        [&](int64_t lo, int64_t hi) {
          for (int64_t i = lo; i < hi; ++i) {
            const float* row = item_emb.row(i);
            int32_t best = 0;
            float best_d = 0.f;
            for (int32_t c = 0; c < cells; ++c) {
              const float* cen = index->centroids_.row(c);
              float d = 0.f;
              for (int64_t p = 0; p < dim; ++p) {
                const float diff = row[p] - cen[p];
                d += diff * diff;
              }
              if (c == 0 || d < best_d) {
                best = c;
                best_d = d;
              }
            }
            assign[static_cast<size_t>(i)] = best;
          }
        },
        grain);

    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0);
    for (int64_t i = 0; i < num_items; ++i) {
      const int32_t c = assign[static_cast<size_t>(i)];
      const float* row = item_emb.row(i);
      double* sum = sums.data() + static_cast<size_t>(c) * dim;
      for (int64_t p = 0; p < dim; ++p) sum[p] += row[p];
      ++counts[static_cast<size_t>(c)];
    }
    for (int32_t c = 0; c < cells; ++c) {
      // An empty cell keeps its previous centroid (it may capture items in
      // a later iteration; collapsing it would change the cell count).
      if (counts[static_cast<size_t>(c)] == 0) continue;
      const double inv = 1.0 / static_cast<double>(counts[c]);
      const double* sum = sums.data() + static_cast<size_t>(c) * dim;
      float* cen = index->centroids_.row(c);
      for (int64_t p = 0; p < dim; ++p) {
        cen[p] = static_cast<float>(sum[p] * inv);
      }
    }
  }

  // CSR membership: counts -> offsets, then fill in ascending item order
  // so every cell's list is sorted (the candidate re-rank depends on it).
  index->cell_offsets_.assign(static_cast<size_t>(cells) + 1, 0);
  for (int64_t i = 0; i < num_items; ++i) {
    ++index->cell_offsets_[static_cast<size_t>(assign[i]) + 1];
  }
  index->empty_cells_ = 0;
  for (int32_t c = 0; c < cells; ++c) {
    if (index->cell_offsets_[static_cast<size_t>(c) + 1] == 0) {
      ++index->empty_cells_;
    }
    index->cell_offsets_[static_cast<size_t>(c) + 1] +=
        index->cell_offsets_[static_cast<size_t>(c)];
  }
  index->cell_items_.resize(static_cast<size_t>(num_items));
  std::vector<int64_t> fill(index->cell_offsets_.begin(),
                            index->cell_offsets_.end() - 1);
  for (int64_t i = 0; i < num_items; ++i) {
    index->cell_items_[static_cast<size_t>(
        fill[static_cast<size_t>(assign[i])]++)] = static_cast<int32_t>(i);
  }

  index->build_us_ = obs::NowMicros() - t0;
  OBS_COUNT("serve.retrieval.index_builds", 1);
  OBS_GAUGE("serve.retrieval.index_cells", static_cast<double>(cells));
  OBS_GAUGE("serve.retrieval.index_build_us",
            static_cast<double>(index->build_us_));
  return std::shared_ptr<const ItemIndex>(std::move(index));
}

void ItemIndex::TopCells(const float* user_row, int32_t nprobe,
                         std::vector<int32_t>* out) const {
  nprobe = std::min(std::max(nprobe, 1), cells_);
  const int64_t dim = centroids_.cols();
  // Cell counts are small (tens to low thousands): score them all and sort
  // the (score desc, id asc) order directly — no heap needed.
  struct CellScore {
    float score;
    int32_t cell;
  };
  std::vector<CellScore> scored(static_cast<size_t>(cells_));
  for (int32_t c = 0; c < cells_; ++c) {
    const float* cen = centroids_.row(c);
    float acc = 0.f;
    for (int64_t p = 0; p < dim; ++p) acc += user_row[p] * cen[p];
    scored[static_cast<size_t>(c)] = CellScore{acc, c};
  }
  std::partial_sort(scored.begin(), scored.begin() + nprobe, scored.end(),
                    [](const CellScore& a, const CellScore& b) {
                      return a.score != b.score ? a.score > b.score
                                                : a.cell < b.cell;
                    });
  out->resize(static_cast<size_t>(nprobe));
  for (int32_t i = 0; i < nprobe; ++i) {
    (*out)[static_cast<size_t>(i)] = scored[static_cast<size_t>(i)].cell;
  }
}

void ItemIndex::GatherCandidates(const std::vector<int32_t>& probe_cells,
                                 std::vector<int32_t>* out) const {
  out->clear();
  int64_t total = 0;
  for (int32_t c : probe_cells) total += cell_size(c);
  out->reserve(static_cast<size_t>(total));
  for (int32_t c : probe_cells) {
    out->insert(out->end(), cell_begin(c), cell_begin(c) + cell_size(c));
  }
  // Cells are disjoint and internally sorted; one sort merges them into
  // the ascending order the subset kernels' exclusion cursor requires.
  std::sort(out->begin(), out->end());
}

}  // namespace layergcn::serve
