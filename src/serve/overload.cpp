#include "serve/overload.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/obs.h"
#include "util/logging.h"

namespace layergcn::serve {

const char* PriorityName(Priority priority) {
  switch (priority) {
    case Priority::kInteractive: return "interactive";
    case Priority::kBatch: return "batch";
    case Priority::kBackground: return "background";
  }
  return "unknown";
}

bool ParsePriority(const std::string& name, Priority* out) {
  if (name == "interactive") {
    *out = Priority::kInteractive;
  } else if (name == "batch") {
    *out = Priority::kBatch;
  } else if (name == "background") {
    *out = Priority::kBackground;
  } else {
    return false;
  }
  return true;
}

// --- AdaptiveLimiter ----------------------------------------------------

namespace {

AdaptiveLimiter::Options SanitizeLimiter(AdaptiveLimiter::Options o) {
  o.min_limit = std::max<int64_t>(o.min_limit, 1);
  o.max_limit = std::max(o.max_limit, o.min_limit);
  o.initial_limit = std::clamp(o.initial_limit, o.min_limit, o.max_limit);
  o.decrease_factor = std::clamp(o.decrease_factor, 0.05, 0.99);
  o.increase_every = std::max<int64_t>(o.increase_every, 1);
  return o;
}

}  // namespace

AdaptiveLimiter::AdaptiveLimiter() : AdaptiveLimiter(Options()) {}

AdaptiveLimiter::AdaptiveLimiter(const Options& options)
    : options_(SanitizeLimiter(options)), limit_(options_.initial_limit) {
  OBS_GAUGE("serve.overload.limit", static_cast<double>(limit_.load()));
}

void AdaptiveLimiter::CongestionLocked(uint64_t now_us) {
  if (now_us < last_decrease_us_ + options_.decrease_cooldown_us) return;
  last_decrease_us_ = now_us;
  good_streak_ = 0;
  const int64_t cur = limit_.load(std::memory_order_relaxed);
  const int64_t next = std::max(
      options_.min_limit,
      static_cast<int64_t>(static_cast<double>(cur) *
                           options_.decrease_factor));
  if (next != cur) {
    limit_.store(next, std::memory_order_relaxed);
    decreases_.fetch_add(1, std::memory_order_relaxed);
    OBS_COUNT("serve.overload.limit_decreases", 1);
    OBS_GAUGE("serve.overload.limit", static_cast<double>(next));
  }
}

void AdaptiveLimiter::OnComplete(uint64_t now_us, uint64_t latency_us,
                                 bool congested) {
  // EWMA with alpha 1/8 — smooth enough for retry hints, fast enough to
  // track a mode change within a few tens of requests.
  uint64_t prev = ewma_us_.load(std::memory_order_relaxed);
  ewma_us_.store(prev == 0 ? latency_us : prev - prev / 8 + latency_us / 8,
                 std::memory_order_relaxed);

  std::lock_guard<std::mutex> lock(mu_);
  if (congested || latency_us > options_.latency_target_us) {
    CongestionLocked(now_us);
    return;
  }
  if (++good_streak_ < options_.increase_every) return;
  good_streak_ = 0;
  const int64_t cur = limit_.load(std::memory_order_relaxed);
  if (cur >= options_.max_limit) return;
  limit_.store(cur + 1, std::memory_order_relaxed);
  increases_.fetch_add(1, std::memory_order_relaxed);
  OBS_COUNT("serve.overload.limit_increases", 1);
  OBS_GAUGE("serve.overload.limit", static_cast<double>(cur + 1));
}

void AdaptiveLimiter::OnExpired(uint64_t now_us) {
  std::lock_guard<std::mutex> lock(mu_);
  CongestionLocked(now_us);
}

// --- BrownoutController -------------------------------------------------

const char* BrownoutLevelName(BrownoutLevel level) {
  switch (level) {
    case BrownoutLevel::kNone: return "none";
    case BrownoutLevel::kIvf: return "ivf";
    case BrownoutLevel::kQuantized: return "quantized";
    case BrownoutLevel::kCacheOnly: return "cache_only";
  }
  return "unknown";
}

namespace {

BrownoutController::Options SanitizeBrownout(BrownoutController::Options o) {
  o.max_level = std::clamp(o.max_level, 0, kNumBrownoutLevels - 1);
  return o;
}

}  // namespace

BrownoutController::BrownoutController()
    : BrownoutController(Options()) {}

BrownoutController::BrownoutController(const Options& options)
    : options_(SanitizeBrownout(options)) {
  OBS_GAUGE("serve.overload.brownout_level", 0.0);
}

void BrownoutController::SetLevelLocked(int level, uint64_t now_us) {
  const int prev = level_.load(std::memory_order_relaxed);
  if (level == prev) return;
  level_.store(level, std::memory_order_relaxed);
  transitions_.fetch_add(1, std::memory_order_relaxed);
  last_step_us_ = now_us;
  OBS_COUNT("serve.overload.brownout_transitions", 1);
  OBS_GAUGE("serve.overload.brownout_level", static_cast<double>(level));
  LAYERGCN_LOG(kWarning) << "brownout "
                         << BrownoutLevelName(
                                static_cast<BrownoutLevel>(prev))
                         << " -> "
                         << BrownoutLevelName(
                                static_cast<BrownoutLevel>(level));
}

BrownoutLevel BrownoutController::OnSloState(obs::SloMonitor::State state,
                                             uint64_t now_us) {
  if (!options_.enabled) return BrownoutLevel::kNone;
  std::lock_guard<std::mutex> lock(mu_);
  const int cur = level_.load(std::memory_order_relaxed);
  switch (state) {
    case obs::SloMonitor::State::kBreach:
      ok_since_us_ = 0;
      if (cur < options_.max_level &&
          now_us >= last_step_us_ + options_.step_down_hold_us) {
        SetLevelLocked(cur + 1, now_us);
      }
      break;
    case obs::SloMonitor::State::kWarn:
      // Hold: neither direction moves while the burn is elevated but not
      // breaching — this is the hysteresis band.
      ok_since_us_ = 0;
      break;
    case obs::SloMonitor::State::kOk:
      if (cur == 0) break;
      if (ok_since_us_ == 0) {
        ok_since_us_ = now_us;
      } else if (now_us >= ok_since_us_ + options_.step_up_hold_us) {
        SetLevelLocked(cur - 1, now_us);
        ok_since_us_ = now_us;  // prove recovery again per rung
      }
      break;
  }
  return static_cast<BrownoutLevel>(level_.load(std::memory_order_relaxed));
}

}  // namespace layergcn::serve
