#include "serve/recommend_service.h"

#include <algorithm>
#include <iterator>
#include <memory>
#include <string>
#include <utility>

#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace layergcn::serve {
namespace {

// serve.latency_us histogram bucket upper edges (microseconds).
const std::vector<double>& LatencyBounds() {
  static const std::vector<double>* bounds = new std::vector<double>{
      100, 250, 500, 1000, 2500, 5000, 10000, 25000, 50000, 100000};
  return *bounds;
}

}  // namespace

RecommendService::RecommendService(SnapshotStore* store)
    : RecommendService(store, RecommendServiceOptions()) {}

namespace {

// LAYERGCN_SLO_* environment overrides win over programmatic options.
ServingStatsOptions WithEnvSlo(ServingStatsOptions stats) {
  stats.slo = obs::SloMonitor::FromEnv(stats.slo);
  return stats;
}

}  // namespace

RecommendService::RecommendService(SnapshotStore* store,
                                   const RecommendServiceOptions& options)
    : store_(store),
      options_(options),
      breaker_(options.breaker),
      stats_(WithEnvSlo(options.stats)) {
  LAYERGCN_CHECK(store_ != nullptr);
  LAYERGCN_CHECK_GE(options_.max_k, 1);
  LAYERGCN_CHECK_GE(options_.queue_capacity, 1);
}

RecommendService::~RecommendService() {
  std::unique_lock<std::mutex> lock(mu_);
  shutting_down_ = true;
  drained_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

util::Status RecommendService::Validate(const ModelSnapshot& snap,
                                        const RecommendRequest& req) const {
  if (req.user_id < 0 ||
      static_cast<int64_t>(req.user_id) >= snap.num_users()) {
    return util::InvalidArgumentError(
        "user_id " + std::to_string(req.user_id) + " outside [0, " +
        std::to_string(snap.num_users()) + ")");
  }
  if (req.k < 1 || req.k > options_.max_k) {
    return util::InvalidArgumentError("k " + std::to_string(req.k) +
                                      " outside [1, " +
                                      std::to_string(options_.max_k) + "]");
  }
  return util::OkStatus();
}

bool RecommendService::CacheLookup(const ModelSnapshot& snap,
                                   eval::ScoreEncoding encoding,
                                   RetrievalMode retrieval,
                                   const RecommendRequest& req,
                                   RecommendResponse* resp) {
  std::lock_guard<std::mutex> lock(cache_mu_);
  const auto it = cache_.find(req.user_id);
  // Version + encoding + retrieval-mode keying is the invalidation: an
  // entry computed against a hot-swapped-out snapshot, another encoding,
  // or the other retrieval path never serves. In particular an
  // approximate (ivf) top-K is never handed out as an exact prefix. A
  // cached top-k' answers any k <= k' within its mode — serve the prefix.
  if (it == cache_.end() || it->second.snapshot_version != snap.version() ||
      it->second.encoding != encoding || it->second.retrieval != retrieval ||
      it->second.k < req.k) {
    OBS_COUNT("serve.score_cache_misses", 1);
    return false;
  }
  CacheEntry& entry = it->second;
  cache_lru_.splice(cache_lru_.begin(), cache_lru_, entry.lru_it);
  const size_t n =
      std::min(entry.items.size(), static_cast<size_t>(req.k));
  resp->items.assign(entry.items.begin(),
                     entry.items.begin() + static_cast<ptrdiff_t>(n));
  resp->cached = true;
  resp->encoding = encoding;
  resp->retrieval = retrieval;
  resp->snapshot_version = snap.version();
  OBS_COUNT("serve.score_cache_hits", 1);
  return true;
}

void RecommendService::CacheInsert(const ModelSnapshot& snap,
                                   eval::ScoreEncoding encoding,
                                   RetrievalMode retrieval,
                                   const RecommendRequest& req,
                                   const RecommendResponse& resp) {
  std::lock_guard<std::mutex> lock(cache_mu_);
  auto it = cache_.find(req.user_id);
  if (it == cache_.end()) {
    while (static_cast<int64_t>(cache_.size()) >=
           options_.score_cache_capacity) {
      cache_.erase(cache_lru_.back());
      cache_lru_.pop_back();
    }
    cache_lru_.push_front(req.user_id);
    it = cache_.emplace(req.user_id, CacheEntry{}).first;
    it->second.lru_it = cache_lru_.begin();
  } else {
    // Keep a same-version same-encoding same-mode entry with a larger k:
    // it already answers this request and more.
    if (it->second.snapshot_version == snap.version() &&
        it->second.encoding == encoding &&
        it->second.retrieval == retrieval && it->second.k >= req.k) {
      cache_lru_.splice(cache_lru_.begin(), cache_lru_, it->second.lru_it);
      return;
    }
    cache_lru_.splice(cache_lru_.begin(), cache_lru_, it->second.lru_it);
  }
  CacheEntry& entry = it->second;
  entry.snapshot_version = snap.version();
  entry.encoding = encoding;
  entry.retrieval = retrieval;
  entry.k = req.k;
  entry.items = resp.items;
}

std::vector<std::vector<int32_t>> RecommendService::ScoreTopK(
    const ModelSnapshot& snap, const RecommendRequest& req,
    eval::ScoreEncoding encoding, RetrievalMode retrieval,
    eval::RankDeadline* deadline, std::vector<std::vector<float>>* scores,
    int64_t* candidates_scored) {
  const std::vector<int32_t> user_ids = {req.user_id};
  if (retrieval == RetrievalMode::kIvf) {
    // Stage one: probe. Centroids are scored against the f32 user row
    // (always present, whatever encoding re-ranks) — the probe picks
    // cells, it never contributes to item scores, so mixing precisions
    // here cannot perturb the ranking.
    const ItemIndex& index = snap.item_index();
    // Per-worker scratch: requests run one per pool worker, so these
    // never see concurrent use and the hot path stays allocation-free.
    thread_local std::vector<int32_t> probe_cells;
    thread_local std::vector<int32_t> candidates;
    index.TopCells(snap.user_emb().row(req.user_id), options_.nprobe,
                   &probe_cells);
    index.GatherCandidates(probe_cells, &candidates);
    OBS_COUNT("serve.retrieval.requests", 1);
    OBS_COUNT("serve.retrieval.cells_probed",
              static_cast<int64_t>(probe_cells.size()));
    OBS_COUNT("serve.retrieval.candidates_scored",
              static_cast<int64_t>(candidates.size()));
    *candidates_scored = static_cast<int64_t>(candidates.size());
    // Stage two: exact re-rank over the candidates only, same per-pair
    // scores and (score desc, id asc) order as the full kernels.
    switch (encoding) {
      case eval::ScoreEncoding::kInt8:
        return eval::QuantScoreTopKInt8Subset(
            snap.user_int8(), user_ids, snap.item_int8_panel(), candidates,
            req.k, &snap.user_history(), options_.rank, deadline, scores);
      case eval::ScoreEncoding::kBf16:
        return eval::QuantScoreTopKBf16Subset(
            snap.user_bf16(), user_ids, snap.item_bf16_panel(), candidates,
            req.k, &snap.user_history(), options_.rank, deadline, scores);
      case eval::ScoreEncoding::kF32:
        return eval::FusedScoreTopKSubset(
            snap.user_emb(), user_ids, snap.item_emb(), candidates, req.k,
            &snap.user_history(), options_.rank, deadline, scores);
    }
  }
  *candidates_scored = snap.num_items();
  switch (encoding) {
    case eval::ScoreEncoding::kInt8:
      return eval::QuantScoreTopKInt8(
          snap.user_int8(), user_ids, snap.item_int8_panel(), req.k,
          &snap.user_history(), options_.rank, deadline, scores);
    case eval::ScoreEncoding::kBf16:
      return eval::QuantScoreTopKBf16(
          snap.user_bf16(), user_ids, snap.item_bf16_panel(), req.k,
          &snap.user_history(), options_.rank, deadline, scores);
    case eval::ScoreEncoding::kF32:
      return eval::FusedScoreTopK(
          snap.user_emb(), user_ids, snap.item_emb(), req.k,
          &snap.user_history(), options_.rank, deadline, scores);
  }
  return {};
}

RecommendResponse RecommendService::ServeDegraded(
    const ModelSnapshot& snap, const RecommendRequest& req) const {
  OBS_COUNT("serve.degraded", 1);
  RecommendResponse resp;
  resp.degraded = true;
  resp.snapshot_version = snap.version();
  const std::vector<int32_t>& hist =
      snap.user_history()[static_cast<size_t>(req.user_id)];
  resp.items.reserve(static_cast<size_t>(req.k));
  for (int32_t item : snap.popular_items()) {
    if (std::binary_search(hist.begin(), hist.end(), item)) continue;
    resp.items.push_back(ScoredItem{
        item,
        static_cast<float>(snap.item_counts()[static_cast<size_t>(item)])});
    if (resp.items.size() == static_cast<size_t>(req.k)) break;
  }
  return resp;
}

util::StatusOr<RecommendResponse> RecommendService::Recommend(
    const RecommendRequest& req) {
  // Self-recording convenience path: the local context still feeds the
  // SLO/percentile stats, it just has no driver-side serialize stage.
  RequestContext ctx;
  util::StatusOr<RecommendResponse> out = Recommend(req, &ctx);
  ctx.done_us = obs::NowMicros();
  stats_.Record(ctx, ctx.done_us);
  return out;
}

util::StatusOr<RecommendResponse> RecommendService::Recommend(
    const RecommendRequest& req, RequestContext* ctx) {
  LAYERGCN_CHECK(ctx != nullptr);
  obs::TraceRequestScope request_scope(ctx->id);
  OBS_SPAN("serve.request");
  OBS_COUNT("serve.requests", 1);
  const uint64_t start_us = obs::NowMicros();
  ctx->user = req.user_id;
  ctx->k = req.k;
  ctx->budget_us = req.budget_us;
  ctx->start_us = start_us;
  if (ctx->submit_us != 0 && start_us > ctx->submit_us) {
    ctx->stage(Stage::kAdmission) = start_us - ctx->submit_us;
  }

  const auto fail = [ctx](util::Status status) {
    ctx->code = status.code();
    ctx->error = status.message();
    ctx->finish_us = obs::NowMicros();
    return status;
  };

  const std::shared_ptr<const ModelSnapshot> snap = store_->current();
  if (snap == nullptr) {
    OBS_COUNT("serve.validation_errors", 1);
    ctx->stage(Stage::kSnapshot) = obs::NowMicros() - start_us;
    return fail(util::FailedPreconditionError("no snapshot loaded"));
  }
  ctx->snapshot_version = snap->version();
  const util::Status valid = Validate(*snap, req);
  ctx->stage(Stage::kSnapshot) = obs::NowMicros() - start_us;
  if (!valid.ok()) {
    OBS_COUNT("serve.validation_errors", 1);
    return fail(valid);
  }

  RecommendResponse resp;
  bool served = false;
  if (!breaker_.Allow(start_us)) {
    // Breaker open: skip model scoring, serve the popularity ranking.
    const uint64_t score_t0 = obs::NowMicros();
    resp = ServeDegraded(*snap, req);
    ctx->stage(Stage::kScore) = obs::NowMicros() - score_t0;
    served = true;
  } else {
    // Resolve the encoding this request actually scores with: a requested
    // quantized copy the snapshot does not carry degrades to the f32
    // reference for this request only.
    eval::ScoreEncoding encoding = options_.encoding;
    if ((encoding == eval::ScoreEncoding::kInt8 && !snap->has_int8()) ||
        (encoding == eval::ScoreEncoding::kBf16 && !snap->has_bf16())) {
      OBS_COUNT("serve.encoding_fallbacks", 1);
      encoding = eval::ScoreEncoding::kF32;
    }
    // Resolve the retrieval path: a per-request exact override always
    // wins, and an ivf default degrades to exact for this request when
    // the snapshot carries no index (build failed or never requested).
    RetrievalMode retrieval = options_.retrieval;
    if (req.exact) {
      retrieval = RetrievalMode::kExact;
    } else if (retrieval == RetrievalMode::kIvf && !snap->has_index()) {
      OBS_COUNT("serve.retrieval.exact_fallbacks", 1);
      retrieval = RetrievalMode::kExact;
    }

    if (options_.score_cache_capacity > 0) {
      const uint64_t cache_t0 = obs::NowMicros();
      const bool hit = CacheLookup(*snap, encoding, retrieval, req, &resp);
      ctx->stage(Stage::kCache) = obs::NowMicros() - cache_t0;
      if (hit) {
        breaker_.RecordSuccess();
        served = true;
      }
    }

    if (!served) {
      const uint64_t score_t0 = obs::NowMicros();
      eval::RankDeadline deadline;
      if (req.budget_us > 0) deadline.deadline_us = start_us + req.budget_us;
      std::vector<std::vector<float>> scores;
      eval::RankDeadline* dl = req.budget_us > 0 ? &deadline : nullptr;
      int64_t candidates_scored = 0;
      std::vector<std::vector<int32_t>> ranked = ScoreTopK(
          *snap, req, encoding, retrieval, dl, &scores, &candidates_scored);
      ctx->stage(Stage::kScore) = obs::NowMicros() - score_t0;

      const bool expired =
          deadline.expired.load(std::memory_order_relaxed);
      if (!expired) {
        breaker_.RecordSuccess();
      } else {
        breaker_.RecordFailure(obs::NowMicros());
        if (ranked[0].empty()) {
          OBS_COUNT("serve.deadline_errors", 1);
          OBS_OBSERVE("serve.latency_us", LatencyBounds(),
                      obs::NowMicros() - start_us);
          return fail(util::DeadlineExceededError(
              "budget " + std::to_string(req.budget_us) +
              "us spent before any item tile was scored"));
        }
        OBS_COUNT("serve.deadline_partial", 1);
        resp.partial = true;
      }
      resp.encoding = encoding;
      resp.retrieval = retrieval;
      resp.candidates = candidates_scored;
      resp.snapshot_version = snap->version();
      resp.items.resize(ranked[0].size());
      for (size_t i = 0; i < ranked[0].size(); ++i) {
        resp.items[i] = ScoredItem{ranked[0][i], scores[0][i]};
      }
      if (options_.score_cache_capacity > 0 && !resp.partial) {
        CacheInsert(*snap, encoding, retrieval, req, resp);
      }

      // Live recall monitor: every Nth complete index-served response is
      // re-ranked exactly (no deadline — the sample must be complete) and
      // the top-K overlap published as a gauge. One extra full scan per N
      // requests, on the request's own thread.
      if (retrieval == RetrievalMode::kIvf && !resp.partial &&
          options_.recall_sample_every > 0 &&
          ivf_served_.fetch_add(1, std::memory_order_relaxed) %
                  options_.recall_sample_every ==
              0) {
        std::vector<std::vector<float>> exact_scores;
        int64_t exact_candidates = 0;
        const std::vector<std::vector<int32_t>> exact_ranked =
            ScoreTopK(*snap, req, encoding, RetrievalMode::kExact, nullptr,
                      &exact_scores, &exact_candidates);
        std::vector<int32_t> a = ranked[0], b = exact_ranked[0];
        std::sort(a.begin(), a.end());
        std::sort(b.begin(), b.end());
        std::vector<int32_t> both;
        std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                              std::back_inserter(both));
        const double overlap =
            b.empty() ? 1.0
                      : static_cast<double>(both.size()) /
                            static_cast<double>(b.size());
        OBS_COUNT("serve.retrieval.recall_samples", 1);
        OBS_GAUGE("serve.retrieval.recall_sample", overlap);
      }
    }
  }

  ctx->cached = resp.cached;
  ctx->partial = resp.partial;
  ctx->degraded = resp.degraded;
  ctx->encoding = resp.encoding;
  ctx->retrieval = resp.retrieval;
  ctx->candidates = resp.candidates;
  resp.latency_us = obs::NowMicros() - start_us;
  OBS_OBSERVE("serve.latency_us", LatencyBounds(), resp.latency_us);
  ctx->finish_us = obs::NowMicros();
  return resp;
}

std::future<util::StatusOr<RecommendResponse>> RecommendService::Submit(
    const RecommendRequest& req) {
  return Submit(req, nullptr);
}

std::future<util::StatusOr<RecommendResponse>> RecommendService::Submit(
    const RecommendRequest& req, RequestContext* ctx) {
  const uint64_t submit_us = obs::NowMicros();
  if (ctx != nullptr) {
    ctx->submit_us = submit_us;
    ctx->user = req.user_id;
    ctx->k = req.k;
    ctx->budget_us = req.budget_us;
  }
  auto promise =
      std::make_shared<std::promise<util::StatusOr<RecommendResponse>>>();
  std::future<util::StatusOr<RecommendResponse>> future =
      promise->get_future();
  bool shed = false;
  std::string shed_reason;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_ || in_flight_ >= options_.queue_capacity) {
      shed = true;
      shed_reason = shutting_down_
                        ? "service shutting down"
                        : "admission queue full (" +
                              std::to_string(options_.queue_capacity) +
                              " in flight)";
    } else {
      ++in_flight_;
    }
  }
  if (shed) {
    OBS_COUNT("serve.shed", 1);
    util::Status status = util::ResourceExhaustedError(shed_reason);
    const uint64_t now_us = obs::NowMicros();
    if (ctx != nullptr) {
      // Caller records when the future resolves.
      ctx->shed = true;
      ctx->code = status.code();
      ctx->error = status.message();
      ctx->finish_us = now_us;
    } else {
      RequestContext shed_ctx;
      shed_ctx.user = req.user_id;
      shed_ctx.k = req.k;
      shed_ctx.budget_us = req.budget_us;
      shed_ctx.shed = true;
      shed_ctx.code = status.code();
      shed_ctx.error = status.message();
      shed_ctx.submit_us = submit_us;
      shed_ctx.finish_us = now_us;
      shed_ctx.done_us = now_us;
      stats_.Record(shed_ctx, now_us);
    }
    promise->set_value(std::move(status));
    return future;
  }
  util::parallel::ComputePool()->Submit([this, promise, req, ctx] {
    if (ctx != nullptr) {
      promise->set_value(Recommend(req, ctx));
    } else {
      promise->set_value(Recommend(req));
    }
    // Decrement after the future is satisfied; the destructor holds `this`
    // alive until in_flight_ reaches zero.
    std::lock_guard<std::mutex> lock(mu_);
    --in_flight_;
    drained_cv_.notify_all();
  });
  return future;
}

int64_t RecommendService::in_flight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_flight_;
}

}  // namespace layergcn::serve
