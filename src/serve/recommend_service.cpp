#include "serve/recommend_service.h"

#include <algorithm>
#include <iterator>
#include <memory>
#include <string>
#include <utility>

#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace layergcn::serve {
namespace {

// serve.latency_us histogram bucket upper edges (microseconds).
const std::vector<double>& LatencyBounds() {
  static const std::vector<double>* bounds = new std::vector<double>{
      100, 250, 500, 1000, 2500, 5000, 10000, 25000, 50000, 100000};
  return *bounds;
}

}  // namespace

RecommendService::RecommendService(SnapshotStore* store)
    : RecommendService(store, RecommendServiceOptions()) {}

namespace {

// LAYERGCN_SLO_* environment overrides win over programmatic options.
ServingStatsOptions WithEnvSlo(ServingStatsOptions stats) {
  stats.slo = obs::SloMonitor::FromEnv(stats.slo);
  return stats;
}

}  // namespace

RecommendService::RecommendService(SnapshotStore* store,
                                   const RecommendServiceOptions& options)
    : store_(store),
      options_(options),
      breaker_(options.breaker),
      stats_(WithEnvSlo(options.stats)),
      limiter_(options.overload.limiter),
      brownout_(options.overload.brownout) {
  LAYERGCN_CHECK(store_ != nullptr);
  LAYERGCN_CHECK_GE(options_.max_k, 1);
  LAYERGCN_CHECK_GE(options_.queue_capacity, 1);
}

RecommendService::~RecommendService() {
  // Refuse new arrivals, fail what is still waiting, drain what is
  // executing. Queued promises are resolved outside the lock.
  std::vector<Pending> abandoned;
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
    for (auto& queue : queues_) {
      while (!queue.empty()) {
        abandoned.push_back(std::move(queue.front()));
        queue.pop_front();
        --queued_;
      }
    }
  }
  const uint64_t now_us = obs::NowMicros();
  for (Pending& p : abandoned) {
    ResolveShed(std::move(p), "service shutting down", 0, now_us);
  }
  std::unique_lock<std::mutex> lock(mu_);
  drained_cv_.wait(lock, [this] { return workers_ == 0 && executing_ == 0; });
}

util::Status RecommendService::Validate(const ModelSnapshot& snap,
                                        const RecommendRequest& req) const {
  if (req.user_id < 0 ||
      static_cast<int64_t>(req.user_id) >= snap.num_users()) {
    return util::InvalidArgumentError(
        "user_id " + std::to_string(req.user_id) + " outside [0, " +
        std::to_string(snap.num_users()) + ")");
  }
  if (req.k < 1 || req.k > options_.max_k) {
    return util::InvalidArgumentError("k " + std::to_string(req.k) +
                                      " outside [1, " +
                                      std::to_string(options_.max_k) + "]");
  }
  return util::OkStatus();
}

bool RecommendService::CacheLookup(const ModelSnapshot& snap,
                                   eval::ScoreEncoding encoding,
                                   RetrievalMode retrieval,
                                   const RecommendRequest& req,
                                   RecommendResponse* resp) {
  std::lock_guard<std::mutex> lock(cache_mu_);
  const auto it = cache_.find(req.user_id);
  // Version + encoding + retrieval-mode keying is the invalidation: an
  // entry computed against a hot-swapped-out snapshot, another encoding,
  // or the other retrieval path never serves. In particular an
  // approximate (ivf) top-K is never handed out as an exact prefix. A
  // cached top-k' answers any k <= k' within its mode — serve the prefix.
  if (it == cache_.end() || it->second.snapshot_version != snap.version() ||
      it->second.encoding != encoding || it->second.retrieval != retrieval ||
      it->second.k < req.k) {
    OBS_COUNT("serve.score_cache_misses", 1);
    return false;
  }
  CacheEntry& entry = it->second;
  cache_lru_.splice(cache_lru_.begin(), cache_lru_, entry.lru_it);
  const size_t n =
      std::min(entry.items.size(), static_cast<size_t>(req.k));
  resp->items.assign(entry.items.begin(),
                     entry.items.begin() + static_cast<ptrdiff_t>(n));
  resp->cached = true;
  resp->encoding = encoding;
  resp->retrieval = retrieval;
  resp->snapshot_version = snap.version();
  OBS_COUNT("serve.score_cache_hits", 1);
  return true;
}

void RecommendService::CacheInsert(const ModelSnapshot& snap,
                                   eval::ScoreEncoding encoding,
                                   RetrievalMode retrieval,
                                   const RecommendRequest& req,
                                   const RecommendResponse& resp) {
  std::lock_guard<std::mutex> lock(cache_mu_);
  auto it = cache_.find(req.user_id);
  if (it == cache_.end()) {
    while (static_cast<int64_t>(cache_.size()) >=
           options_.score_cache_capacity) {
      cache_.erase(cache_lru_.back());
      cache_lru_.pop_back();
    }
    cache_lru_.push_front(req.user_id);
    it = cache_.emplace(req.user_id, CacheEntry{}).first;
    it->second.lru_it = cache_lru_.begin();
  } else {
    // Keep a same-version same-encoding same-mode entry with a larger k:
    // it already answers this request and more.
    if (it->second.snapshot_version == snap.version() &&
        it->second.encoding == encoding &&
        it->second.retrieval == retrieval && it->second.k >= req.k) {
      cache_lru_.splice(cache_lru_.begin(), cache_lru_, it->second.lru_it);
      return;
    }
    cache_lru_.splice(cache_lru_.begin(), cache_lru_, it->second.lru_it);
  }
  CacheEntry& entry = it->second;
  entry.snapshot_version = snap.version();
  entry.encoding = encoding;
  entry.retrieval = retrieval;
  entry.k = req.k;
  entry.items = resp.items;
}

std::vector<std::vector<int32_t>> RecommendService::ScoreTopK(
    const ModelSnapshot& snap, const RecommendRequest& req,
    eval::ScoreEncoding encoding, RetrievalMode retrieval,
    eval::RankDeadline* deadline, std::vector<std::vector<float>>* scores,
    int64_t* candidates_scored) {
  const std::vector<int32_t> user_ids = {req.user_id};
  if (retrieval == RetrievalMode::kIvf) {
    // Stage one: probe. Centroids are scored against the f32 user row
    // (always present, whatever encoding re-ranks) — the probe picks
    // cells, it never contributes to item scores, so mixing precisions
    // here cannot perturb the ranking.
    const ItemIndex& index = snap.item_index();
    // Per-worker scratch: requests run one per pool worker, so these
    // never see concurrent use and the hot path stays allocation-free.
    thread_local std::vector<int32_t> probe_cells;
    thread_local std::vector<int32_t> candidates;
    index.TopCells(snap.user_emb().row(req.user_id), options_.nprobe,
                   &probe_cells);
    index.GatherCandidates(probe_cells, &candidates);
    OBS_COUNT("serve.retrieval.requests", 1);
    OBS_COUNT("serve.retrieval.cells_probed",
              static_cast<int64_t>(probe_cells.size()));
    OBS_COUNT("serve.retrieval.candidates_scored",
              static_cast<int64_t>(candidates.size()));
    *candidates_scored = static_cast<int64_t>(candidates.size());
    // Stage two: exact re-rank over the candidates only, same per-pair
    // scores and (score desc, id asc) order as the full kernels.
    switch (encoding) {
      case eval::ScoreEncoding::kInt8:
        return eval::QuantScoreTopKInt8Subset(
            snap.user_int8(), user_ids, snap.item_int8_panel(), candidates,
            req.k, &snap.user_history(), options_.rank, deadline, scores);
      case eval::ScoreEncoding::kBf16:
        return eval::QuantScoreTopKBf16Subset(
            snap.user_bf16(), user_ids, snap.item_bf16_panel(), candidates,
            req.k, &snap.user_history(), options_.rank, deadline, scores);
      case eval::ScoreEncoding::kF32:
        return eval::FusedScoreTopKSubset(
            snap.user_emb(), user_ids, snap.item_emb(), candidates, req.k,
            &snap.user_history(), options_.rank, deadline, scores);
    }
  }
  *candidates_scored = snap.num_items();
  switch (encoding) {
    case eval::ScoreEncoding::kInt8:
      return eval::QuantScoreTopKInt8(
          snap.user_int8(), user_ids, snap.item_int8_panel(), req.k,
          &snap.user_history(), options_.rank, deadline, scores);
    case eval::ScoreEncoding::kBf16:
      return eval::QuantScoreTopKBf16(
          snap.user_bf16(), user_ids, snap.item_bf16_panel(), req.k,
          &snap.user_history(), options_.rank, deadline, scores);
    case eval::ScoreEncoding::kF32:
      return eval::FusedScoreTopK(
          snap.user_emb(), user_ids, snap.item_emb(), req.k,
          &snap.user_history(), options_.rank, deadline, scores);
  }
  return {};
}

RecommendResponse RecommendService::ServeDegraded(
    const ModelSnapshot& snap, const RecommendRequest& req) const {
  OBS_COUNT("serve.degraded", 1);
  RecommendResponse resp;
  resp.degraded = true;
  resp.snapshot_version = snap.version();
  const std::vector<int32_t>& hist =
      snap.user_history()[static_cast<size_t>(req.user_id)];
  resp.items.reserve(static_cast<size_t>(req.k));
  for (int32_t item : snap.popular_items()) {
    if (std::binary_search(hist.begin(), hist.end(), item)) continue;
    resp.items.push_back(ScoredItem{
        item,
        static_cast<float>(snap.item_counts()[static_cast<size_t>(item)])});
    if (resp.items.size() == static_cast<size_t>(req.k)) break;
  }
  return resp;
}

util::StatusOr<RecommendResponse> RecommendService::Recommend(
    const RecommendRequest& req) {
  // Self-recording convenience path: the local context still feeds the
  // SLO/percentile stats, it just has no driver-side serialize stage.
  RequestContext ctx;
  util::StatusOr<RecommendResponse> out = Recommend(req, &ctx);
  ctx.done_us = obs::NowMicros();
  stats_.Record(ctx, ctx.done_us);
  return out;
}

util::StatusOr<RecommendResponse> RecommendService::Recommend(
    const RecommendRequest& req, RequestContext* ctx) {
  LAYERGCN_CHECK(ctx != nullptr);
  obs::TraceRequestScope request_scope(ctx->id);
  OBS_SPAN("serve.request");
  OBS_COUNT("serve.requests", 1);
  const uint64_t start_us = obs::NowMicros();
  ctx->user = req.user_id;
  ctx->k = req.k;
  ctx->budget_us = req.budget_us;
  ctx->start_us = start_us;
  if (ctx->submit_us != 0 && start_us > ctx->submit_us) {
    ctx->stage(Stage::kAdmission) = start_us - ctx->submit_us;
  }

  const auto fail = [ctx](util::Status status) {
    ctx->code = status.code();
    ctx->error = status.message();
    ctx->finish_us = obs::NowMicros();
    return status;
  };

  const std::shared_ptr<const ModelSnapshot> snap = store_->current();
  if (snap == nullptr) {
    OBS_COUNT("serve.validation_errors", 1);
    ctx->stage(Stage::kSnapshot) = obs::NowMicros() - start_us;
    return fail(util::FailedPreconditionError("no snapshot loaded"));
  }
  ctx->snapshot_version = snap->version();
  const util::Status valid = Validate(*snap, req);
  ctx->stage(Stage::kSnapshot) = obs::NowMicros() - start_us;
  if (!valid.ok()) {
    OBS_COUNT("serve.validation_errors", 1);
    return fail(valid);
  }

  // Brownout rung for this request: the SLO burn state steps the ladder
  // (with hysteresis inside the controller); the rung then forces cheaper
  // serving modes below. Explicit exact requests are exempt — they are
  // the bit-exact reference parity tests and recall sampling rely on.
  const BrownoutLevel brownout =
      options_.overload.brownout.enabled
          ? brownout_.OnSloState(stats_.slo().state(), start_us)
          : BrownoutLevel::kNone;
  ctx->brownout = brownout;
  const bool brownout_applies = !req.exact;

  RecommendResponse resp;
  resp.brownout = brownout;
  bool served = false;
  if (!breaker_.Allow(start_us)) {
    // Breaker open: skip model scoring, serve the popularity ranking.
    const uint64_t score_t0 = obs::NowMicros();
    resp = ServeDegraded(*snap, req);
    resp.brownout = brownout;
    ctx->stage(Stage::kScore) = obs::NowMicros() - score_t0;
    served = true;
  } else {
    // Resolve the encoding this request actually scores with: a requested
    // quantized copy the snapshot does not carry degrades to the f32
    // reference for this request only. A brownout rung at or past
    // kQuantized forces the cheapest quantized copy the snapshot carries.
    eval::ScoreEncoding encoding = options_.encoding;
    if (brownout_applies && brownout >= BrownoutLevel::kQuantized) {
      if (snap->has_int8()) {
        encoding = eval::ScoreEncoding::kInt8;
      } else if (snap->has_bf16()) {
        encoding = eval::ScoreEncoding::kBf16;
      }
    }
    if ((encoding == eval::ScoreEncoding::kInt8 && !snap->has_int8()) ||
        (encoding == eval::ScoreEncoding::kBf16 && !snap->has_bf16())) {
      OBS_COUNT("serve.encoding_fallbacks", 1);
      encoding = eval::ScoreEncoding::kF32;
    }
    // Resolve the retrieval path: a per-request exact override always
    // wins, a brownout rung at or past kIvf forces the index when one
    // exists, and an ivf default degrades to exact for this request when
    // the snapshot carries no index (build failed or never requested).
    RetrievalMode retrieval = options_.retrieval;
    if (req.exact) {
      retrieval = RetrievalMode::kExact;
    } else if (brownout >= BrownoutLevel::kIvf && snap->has_index()) {
      retrieval = RetrievalMode::kIvf;
    } else if (retrieval == RetrievalMode::kIvf && !snap->has_index()) {
      OBS_COUNT("serve.retrieval.exact_fallbacks", 1);
      retrieval = RetrievalMode::kExact;
    }

    if (options_.score_cache_capacity > 0) {
      const uint64_t cache_t0 = obs::NowMicros();
      const bool hit = CacheLookup(*snap, encoding, retrieval, req, &resp);
      ctx->stage(Stage::kCache) = obs::NowMicros() - cache_t0;
      if (hit) {
        resp.brownout = brownout;
        breaker_.RecordSuccess();
        served = true;
      }
    }

    // Deepest rung: no kernel at all. A cache miss serves the popularity
    // ranking — still an answer, at the cost of personalization, never of
    // availability.
    if (!served && brownout_applies &&
        brownout >= BrownoutLevel::kCacheOnly) {
      OBS_COUNT("serve.overload.cache_only_served", 1);
      const uint64_t score_t0 = obs::NowMicros();
      resp = ServeDegraded(*snap, req);
      resp.brownout = brownout;
      ctx->stage(Stage::kScore) = obs::NowMicros() - score_t0;
      served = true;
    }

    if (!served) {
      const uint64_t score_t0 = obs::NowMicros();
      eval::RankDeadline deadline;
      if (req.budget_us > 0) deadline.deadline_us = start_us + req.budget_us;
      std::vector<std::vector<float>> scores;
      eval::RankDeadline* dl = req.budget_us > 0 ? &deadline : nullptr;
      int64_t candidates_scored = 0;
      std::vector<std::vector<int32_t>> ranked = ScoreTopK(
          *snap, req, encoding, retrieval, dl, &scores, &candidates_scored);
      ctx->stage(Stage::kScore) = obs::NowMicros() - score_t0;

      const bool expired =
          deadline.expired.load(std::memory_order_relaxed);
      if (!expired) {
        breaker_.RecordSuccess();
      } else {
        breaker_.RecordFailure(obs::NowMicros());
        if (ranked[0].empty()) {
          OBS_COUNT("serve.deadline_errors", 1);
          OBS_OBSERVE("serve.latency_us", LatencyBounds(),
                      obs::NowMicros() - start_us);
          return fail(util::DeadlineExceededError(
              "budget " + std::to_string(req.budget_us) +
              "us spent before any item tile was scored"));
        }
        OBS_COUNT("serve.deadline_partial", 1);
        resp.partial = true;
      }
      resp.encoding = encoding;
      resp.retrieval = retrieval;
      resp.candidates = candidates_scored;
      resp.snapshot_version = snap->version();
      resp.items.resize(ranked[0].size());
      for (size_t i = 0; i < ranked[0].size(); ++i) {
        resp.items[i] = ScoredItem{ranked[0][i], scores[0][i]};
      }
      if (options_.score_cache_capacity > 0 && !resp.partial) {
        CacheInsert(*snap, encoding, retrieval, req, resp);
      }

      // Live recall monitor: every Nth complete index-served response is
      // re-ranked exactly (no deadline — the sample must be complete) and
      // the top-K overlap published as a gauge. One extra full scan per N
      // requests, on the request's own thread.
      if (retrieval == RetrievalMode::kIvf && !resp.partial &&
          options_.recall_sample_every > 0 &&
          ivf_served_.fetch_add(1, std::memory_order_relaxed) %
                  options_.recall_sample_every ==
              0) {
        std::vector<std::vector<float>> exact_scores;
        int64_t exact_candidates = 0;
        const std::vector<std::vector<int32_t>> exact_ranked =
            ScoreTopK(*snap, req, encoding, RetrievalMode::kExact, nullptr,
                      &exact_scores, &exact_candidates);
        std::vector<int32_t> a = ranked[0], b = exact_ranked[0];
        std::sort(a.begin(), a.end());
        std::sort(b.begin(), b.end());
        std::vector<int32_t> both;
        std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                              std::back_inserter(both));
        const double overlap =
            b.empty() ? 1.0
                      : static_cast<double>(both.size()) /
                            static_cast<double>(b.size());
        OBS_COUNT("serve.retrieval.recall_samples", 1);
        OBS_GAUGE("serve.retrieval.recall_sample", overlap);
      }
    }
  }

  ctx->cached = resp.cached;
  ctx->partial = resp.partial;
  ctx->degraded = resp.degraded;
  ctx->encoding = resp.encoding;
  ctx->retrieval = resp.retrieval;
  ctx->candidates = resp.candidates;
  resp.latency_us = obs::NowMicros() - start_us;
  OBS_OBSERVE("serve.latency_us", LatencyBounds(), resp.latency_us);
  ctx->finish_us = obs::NowMicros();
  return resp;
}

std::future<util::StatusOr<RecommendResponse>> RecommendService::Submit(
    const RecommendRequest& req) {
  return Submit(req, nullptr);
}

namespace {

// Per-class shed counters use fixed literals so the OBS_COUNT static
// caching applies (the shed path is exactly where the service is melting).
void CountShed(Priority priority) {
  OBS_COUNT("serve.shed", 1);
  switch (priority) {
    case Priority::kInteractive:
      OBS_COUNT("serve.shed.interactive", 1);
      break;
    case Priority::kBatch:
      OBS_COUNT("serve.shed.batch", 1);
      break;
    case Priority::kBackground:
      OBS_COUNT("serve.shed.background", 1);
      break;
  }
}

}  // namespace

int64_t RecommendService::concurrency_limit() const {
  if (options_.overload.adaptive) return limiter_.limit();
  if (options_.overload.fixed_limit > 0) return options_.overload.fixed_limit;
  return options_.queue_capacity;
}

uint64_t RecommendService::RetryAfterMsLocked() const {
  // Rough drain-time estimate: backlog ahead of a retry, each costing the
  // smoothed completion latency, spread over the concurrency limit.
  const uint64_t ewma_us =
      std::max<uint64_t>(ewma_latency_us_.load(std::memory_order_relaxed),
                         1000);
  const int64_t backlog = queued_ + executing_;
  const int64_t limit = std::max<int64_t>(concurrency_limit(), 1);
  const uint64_t estimate_ms =
      (static_cast<uint64_t>(backlog) * ewma_us) /
      (static_cast<uint64_t>(limit) * 1000);
  return std::clamp<uint64_t>(estimate_ms, 1, 5000);
}

void RecommendService::ResolveShed(Pending&& p, const std::string& reason,
                                   uint64_t retry_after_ms,
                                   uint64_t now_us) {
  // Every shed response carries a backoff hint, even shutdown sheds.
  retry_after_ms = std::max<uint64_t>(retry_after_ms, 1);
  CountShed(p.req.priority);
  util::Status status = util::ResourceExhaustedError(
      reason + " (retry_after_ms=" + std::to_string(retry_after_ms) + ")");
  if (p.ctx != nullptr) {
    // Caller records when the future resolves.
    p.ctx->shed = true;
    p.ctx->retry_after_ms = retry_after_ms;
    p.ctx->code = status.code();
    p.ctx->error = status.message();
    p.ctx->finish_us = now_us;
  } else {
    RequestContext shed_ctx;
    shed_ctx.user = p.req.user_id;
    shed_ctx.k = p.req.k;
    shed_ctx.budget_us = p.req.budget_us;
    shed_ctx.priority = p.req.priority;
    shed_ctx.shed = true;
    shed_ctx.retry_after_ms = retry_after_ms;
    shed_ctx.code = status.code();
    shed_ctx.error = status.message();
    shed_ctx.submit_us = p.submit_us;
    shed_ctx.finish_us = now_us;
    shed_ctx.done_us = now_us;
    stats_.Record(shed_ctx, now_us);
  }
  p.promise->set_value(std::move(status));
}

void RecommendService::ResolveExpired(Pending&& p, uint64_t now_us) {
  OBS_COUNT("serve.expired_in_queue", 1);
  if (options_.overload.adaptive) limiter_.OnExpired(now_us);
  util::Status status = util::DeadlineExceededError(
      "budget " + std::to_string(p.req.budget_us) +
      "us expired while queued; never scored");
  if (p.ctx != nullptr) {
    p.ctx->expired = true;
    p.ctx->code = status.code();
    p.ctx->error = status.message();
    if (now_us > p.submit_us) {
      p.ctx->stage(Stage::kAdmission) = now_us - p.submit_us;
    }
    p.ctx->finish_us = now_us;
  } else {
    RequestContext exp_ctx;
    exp_ctx.user = p.req.user_id;
    exp_ctx.k = p.req.k;
    exp_ctx.budget_us = p.req.budget_us;
    exp_ctx.priority = p.req.priority;
    exp_ctx.expired = true;
    exp_ctx.code = status.code();
    exp_ctx.error = status.message();
    exp_ctx.submit_us = p.submit_us;
    if (now_us > p.submit_us) {
      exp_ctx.stage(Stage::kAdmission) = now_us - p.submit_us;
    }
    exp_ctx.finish_us = now_us;
    exp_ctx.done_us = now_us;
    stats_.Record(exp_ctx, now_us);
  }
  p.promise->set_value(std::move(status));
}

bool RecommendService::PopNextLocked(Pending* out) {
  for (auto& queue : queues_) {
    if (queue.empty()) continue;
    *out = std::move(queue.front());
    queue.pop_front();
    --queued_;
    ++executing_;
    return true;
  }
  return false;
}

void RecommendService::DispatchLocked() {
  // One worker can cover one request at a time, so spawn until either the
  // limit is reached or there are as many workers as backlog. A worker
  // that races to an empty queue just exits — overspawn is harmless,
  // underspawn would strand queued requests.
  const int64_t limit = concurrency_limit();
  while (workers_ < limit && workers_ < queued_ + executing_) {
    ++workers_;
    util::parallel::ComputePool()->Submit([this] { WorkerLoop(); });
  }
}

void RecommendService::WorkerLoop() {
  for (;;) {
    Pending p;
    {
      std::lock_guard<std::mutex> lock(mu_);
      // The limit may have shrunk while this worker was scoring: workers
      // beyond it retire instead of picking up more work.
      if (workers_ > concurrency_limit() || !PopNextLocked(&p)) {
        --workers_;
        drained_cv_.notify_all();
        return;
      }
    }
    const uint64_t dequeue_us = obs::NowMicros();
    if (p.req.budget_us > 0 && dequeue_us >= p.submit_us + p.req.budget_us) {
      // Expired while queued: shed at dequeue, never scored — under
      // overload, CPU goes to requests someone is still waiting for.
      ResolveExpired(std::move(p), dequeue_us);
    } else {
      util::StatusOr<RecommendResponse> result =
          p.ctx != nullptr ? Recommend(p.req, p.ctx) : Recommend(p.req);
      const uint64_t end_us = obs::NowMicros();
      const uint64_t latency = end_us > p.submit_us ? end_us - p.submit_us : 0;
      uint64_t prev = ewma_latency_us_.load(std::memory_order_relaxed);
      ewma_latency_us_.store(
          prev == 0 ? latency : prev - prev / 8 + latency / 8,
          std::memory_order_relaxed);
      if (options_.overload.adaptive) {
        const bool congested =
            result.ok()
                ? result.value().partial
                : result.status().code() ==
                      util::StatusCode::kDeadlineExceeded;
        limiter_.OnComplete(end_us, latency, congested);
      }
      p.promise->set_value(std::move(result));
    }
    std::lock_guard<std::mutex> lock(mu_);
    --executing_;
    drained_cv_.notify_all();
  }
}

std::future<util::StatusOr<RecommendResponse>> RecommendService::Submit(
    const RecommendRequest& req, RequestContext* ctx) {
  const uint64_t submit_us = obs::NowMicros();
  if (ctx != nullptr) {
    ctx->submit_us = submit_us;
    ctx->user = req.user_id;
    ctx->k = req.k;
    ctx->budget_us = req.budget_us;
    ctx->priority = req.priority;
  }
  Pending incoming;
  incoming.req = req;
  incoming.ctx = ctx;
  incoming.promise =
      std::make_shared<std::promise<util::StatusOr<RecommendResponse>>>();
  incoming.submit_us = submit_us;
  std::future<util::StatusOr<RecommendResponse>> future =
      incoming.promise->get_future();

  bool shed_incoming = false;
  std::string shed_reason;
  uint64_t retry_after_ms = 0;
  Pending victim;
  bool have_victim = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_) {
      shed_incoming = true;
      shed_reason = "service shutting down";
    } else if (queued_ + executing_ >= options_.queue_capacity) {
      retry_after_ms = RetryAfterMsLocked();
      // Strict priority at the bound: evict the newest queued request of
      // the lowest class strictly below the arrival; when nothing queued
      // is lower, the arrival itself is shed.
      int victim_class = -1;
      for (int cls = kNumPriorities - 1;
           cls > static_cast<int>(req.priority); --cls) {
        if (!queues_[cls].empty()) {
          victim_class = cls;
          break;
        }
      }
      if (victim_class >= 0) {
        victim = std::move(queues_[victim_class].back());
        queues_[victim_class].pop_back();
        --queued_;
        have_victim = true;
        queues_[static_cast<int>(req.priority)].push_back(
            std::move(incoming));
        ++queued_;
        DispatchLocked();
      } else {
        shed_incoming = true;
        shed_reason = "admission queue full (" +
                      std::to_string(options_.queue_capacity) +
                      " in flight)";
      }
    } else {
      queues_[static_cast<int>(req.priority)].push_back(std::move(incoming));
      ++queued_;
      DispatchLocked();
    }
  }
  const uint64_t now_us = obs::NowMicros();
  if (shed_incoming) {
    ResolveShed(std::move(incoming), shed_reason, retry_after_ms, now_us);
  }
  if (have_victim) {
    ResolveShed(std::move(victim),
                "evicted by " + std::string(PriorityName(req.priority)) +
                    "-class arrival at capacity",
                retry_after_ms, now_us);
  }
  return future;
}

int64_t RecommendService::in_flight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queued_ + executing_;
}

OverloadState RecommendService::overload_state() const {
  OverloadState state;
  state.adaptive = options_.overload.adaptive;
  state.brownout = brownout_.level();
  state.brownout_transitions = brownout_.transitions();
  state.smoothed_latency_us =
      ewma_latency_us_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  state.limit = concurrency_limit();
  state.executing = executing_;
  for (int cls = 0; cls < kNumPriorities; ++cls) {
    state.queued[cls] = static_cast<int64_t>(queues_[cls].size());
  }
  return state;
}

}  // namespace layergcn::serve
