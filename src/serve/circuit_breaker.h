// Circuit breaker guarding the full-model scoring path.
//
// Classic three-state breaker: kClosed passes every request and counts
// consecutive failures; `failure_threshold` of them trips the breaker to
// kOpen (counted as serve.breaker_opens), which rejects requests outright
// so a struggling scoring path is not hammered while it is slow. After
// `open_cooldown_us` the next Allow() moves to kHalfOpen and lets a probe
// budget of `half_open_probes` requests through: if they all succeed the
// breaker closes, a single failure re-opens it and restarts the cooldown.
//
// Callers pass `now_us` explicitly (obs::NowMicros() in production) so
// tests drive the state machine with a synthetic clock instead of
// sleeping through cooldowns.

#ifndef LAYERGCN_SERVE_CIRCUIT_BREAKER_H_
#define LAYERGCN_SERVE_CIRCUIT_BREAKER_H_

#include <cstdint>
#include <mutex>

namespace layergcn::serve {

/// Thread-safe three-state circuit breaker.
class CircuitBreaker {
 public:
  struct Options {
    /// Consecutive failures (while closed) that trip the breaker open.
    int failure_threshold = 5;
    /// Time spent open before half-open probing begins.
    uint64_t open_cooldown_us = 250000;
    /// Probe requests admitted half-open; all must succeed to close.
    int half_open_probes = 1;
  };

  enum class State { kClosed, kOpen, kHalfOpen };

  CircuitBreaker();  // default Options
  explicit CircuitBreaker(const Options& options);

  /// True when the protected path may be attempted at `now_us`. An open
  /// breaker whose cooldown has elapsed transitions to half-open here and
  /// admits the probe; while half-open, only the probe budget passes.
  bool Allow(uint64_t now_us);

  /// Reports the outcome of an admitted attempt.
  void RecordSuccess();
  void RecordFailure(uint64_t now_us);

  State state() const;
  /// Consecutive failures seen while closed (diagnostics).
  int consecutive_failures() const;

 private:
  void TripOpen(uint64_t now_us);  // mu_ held

  const Options options_;
  mutable std::mutex mu_;
  State state_ = State::kClosed;
  int consecutive_failures_ = 0;
  uint64_t opened_at_us_ = 0;
  int probes_issued_ = 0;    // half-open: Allow() calls admitted
  int probe_successes_ = 0;  // half-open: successes so far
};

}  // namespace layergcn::serve

#endif  // LAYERGCN_SERVE_CIRCUIT_BREAKER_H_
