#include "core/layergcn.h"

#include "tensor/ops.h"

namespace layergcn::core {

ag::Var LayerGcn::Propagate(ag::Tape* tape, ag::Var x0, bool training,
                            util::Rng* /*rng*/) {
  // Paper §III-B1: train on the pruned Â_p, infer on the full Â. The
  // inference_on_full_graph=false ablation evaluates on Â_p instead.
  const bool use_training_graph =
      training || !options_.inference_on_full_graph;
  const sparse::CsrMatrix* adj = adjacency(use_training_graph);

  std::vector<ag::Var> layers;
  std::vector<double> mean_similarities;
  ag::Var x = x0;
  for (int l = 0; l < config_.num_layers; ++l) {
    ag::Var h = ag::SpMMSymmetric(adj, x);
    switch (options_.refinement) {
      case Refinement::kCosine: {
        // Eq. 6-8: X^{l+1} = (cos(H, X⁰) + ε) ⊙_rows H.
        ag::Var a = ag::RowwiseCosine(h, x0, options_.epsilon);
        if (!training && options_.record_layer_similarities) {
          mean_similarities.push_back(tensor::MeanAll(tape->value(a)));
        }
        x = ag::ScaleRows(h, ag::AddScalar(a, options_.epsilon));
        break;
      }
      case Refinement::kNone:
        x = h;
        break;
      case Refinement::kFixedAlpha:
        // GCNII-style initial residual: X^{l+1} = (1−α)H + αX⁰.
        x = ag::Add(ag::Scale(h, 1.f - options_.fixed_alpha),
                    ag::Scale(x0, options_.fixed_alpha));
        break;
    }
    layers.push_back(x);
  }
  if (options_.include_ego_layer) layers.insert(layers.begin(), x0);
  if (!training && options_.record_layer_similarities &&
      !mean_similarities.empty()) {
    similarity_history_.push_back(std::move(mean_similarities));
  }

  ag::Var out = ag::AddN(layers);
  if (options_.readout == Readout::kMean) {
    out = ag::Scale(out, 1.f / static_cast<float>(layers.size()));
  }
  return out;
}

}  // namespace layergcn::core
