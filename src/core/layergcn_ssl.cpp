#include "core/layergcn_ssl.h"

#include <algorithm>

#include "tensor/ops.h"
#include "util/logging.h"

namespace layergcn::core {

void LayerGcnSsl::Init(const data::Dataset& dataset,
                       const train::TrainConfig& config, util::Rng* rng) {
  LayerGcn::Init(dataset, config, rng);
  // The contrastive views always prune, even when the main model runs
  // without edge dropout; a moderate ratio keeps the views informative.
  const double view_ratio =
      config.edge_drop_ratio > 0.0 ? config.edge_drop_ratio : 0.1;
  view_dropout_ = std::make_unique<graph::EdgeDropout>(
      &dataset.train_graph, graph::EdgeDropKind::kDegreeDrop, view_ratio);
}

void LayerGcnSsl::BeginEpoch(int epoch, util::Rng* rng) {
  LayerGcn::BeginEpoch(epoch, rng);
  view_dropout_->SampleAdjacencyInto(rng, epoch, &view1_);
  view_dropout_->SampleAdjacencyInto(rng, epoch, &view2_);
}

ag::Var LayerGcnSsl::PropagateView(ag::Tape* tape, ag::Var x0,
                                   const sparse::CsrMatrix* adj) const {
  const auto& opts = options();
  // Unlike the ranking readout (Eq. 9), the *view* representation keeps the
  // ego layer: a node whose every edge was pruned in this view would
  // otherwise have an exactly-zero embedding, and normalizing a zero vector
  // makes the InfoNCE gradient blow up by 1/eps (SGL's LightGCN backbone
  // never hits this because its mean readout includes X⁰).
  std::vector<ag::Var> layers{x0};
  ag::Var x = x0;
  for (int l = 0; l < config_.num_layers; ++l) {
    ag::Var h = ag::SpMMSymmetric(adj, x);
    ag::Var a = ag::RowwiseCosine(h, x0, opts.epsilon);
    x = ag::ScaleRows(h, ag::AddScalar(a, opts.epsilon));
    layers.push_back(x);
  }
  (void)tape;
  return ag::AddN(layers);
}

ag::Var LayerGcnSsl::BatchLoss(ag::Tape* tape, ag::Var x0,
                               const train::BprBatch& batch,
                               util::Rng* rng) {
  ag::Var loss = LayerGcn::BatchLoss(tape, x0, batch, rng);
  if (ssl_.weight <= 0.f) return loss;
  LAYERGCN_CHECK(view1_.rows() > 0) << "BeginEpoch must sample the views";

  // Contrastive node batches, split by node type: pooling users and items
  // into one softmax would make every positive (u, i) pair an InfoNCE
  // negative and fight the BPR objective head-on — SGL computes the loss
  // per side for exactly this reason.
  const int32_t nu = dataset_->num_users;
  std::vector<int32_t> user_nodes, item_nodes;
  user_nodes.reserve(static_cast<size_t>(batch.size()));
  item_nodes.reserve(static_cast<size_t>(batch.size()));
  for (int64_t k = 0; k < batch.size(); ++k) {
    user_nodes.push_back(batch.users[static_cast<size_t>(k)]);
    item_nodes.push_back(batch.pos_items[static_cast<size_t>(k)] + nu);
  }
  auto prepare = [&](std::vector<int32_t>* nodes) {
    std::sort(nodes->begin(), nodes->end());
    nodes->erase(std::unique(nodes->begin(), nodes->end()), nodes->end());
    if (static_cast<int64_t>(nodes->size()) > ssl_.max_nodes) {
      // Deterministic subsample: shuffle with the training rng, keep a
      // prefix.
      rng->Shuffle(nodes);
      nodes->resize(static_cast<size_t>(ssl_.max_nodes));
    }
  };
  prepare(&user_nodes);
  prepare(&item_nodes);

  // One propagation per view, shared by both sides.
  ag::Var view1_emb = PropagateView(tape, x0, &view1_);
  ag::Var view2_emb = PropagateView(tape, x0, &view2_);

  auto info_nce = [&](const std::vector<int32_t>& nodes) -> ag::Var {
    ag::Var z1 = ag::NormalizeRows(ag::GatherRows(view1_emb, nodes));
    ag::Var z2 = ag::NormalizeRows(ag::GatherRows(view2_emb, nodes));
    ag::Var sim = ag::Scale(ag::MatMul(z1, z2, false, true),
                            1.f / ssl_.temperature);
    ag::Var log_probs = ag::LogSoftmaxRows(sim);
    // −mean(diag): select the matched-view entries with an identity mask.
    tensor::Matrix eye(static_cast<int64_t>(nodes.size()),
                       static_cast<int64_t>(nodes.size()));
    for (size_t i = 0; i < nodes.size(); ++i) {
      eye(static_cast<int64_t>(i), static_cast<int64_t>(i)) = 1.f;
    }
    return ag::Scale(
        ag::Sum(ag::Hadamard(log_probs, tape->Constant(std::move(eye)))),
        -1.f / static_cast<float>(nodes.size()));
  };
  if (user_nodes.size() >= 2) {
    loss = ag::Add(loss, ag::Scale(info_nce(user_nodes), ssl_.weight));
  }
  if (item_nodes.size() >= 2) {
    loss = ag::Add(loss, ag::Scale(info_nce(item_nodes), ssl_.weight));
  }
  return loss;
}

}  // namespace layergcn::core
