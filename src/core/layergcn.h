// LayerGCN — the paper's contribution (§III-B).
//
// Layer-refined graph convolution (Eqs. 6-8):
//
//   H       = Â_p X^l                      (linear propagation, pruned graph)
//   a^{l+1} = cos(H, X⁰)  row-wise          (similarity with the ego layer)
//   X^{l+1} = (a^{l+1} + ε) ⊙_rows H        (refinement)
//
// Readout (Eq. 9): X = Σ_{l=1..L} X^l — the ego layer is dropped because
// its information is already refined into every hidden layer. Training uses
// the degree-sensitively pruned Â_p (Eq. 5); inference uses the full Â.
//
// Every design decision is exposed as a flag so the ablation bench
// (bench_ablation_design) can switch it off independently.

#ifndef LAYERGCN_CORE_LAYERGCN_H_
#define LAYERGCN_CORE_LAYERGCN_H_

#include <string>
#include <vector>

#include "models/embedding_recommender.h"

namespace layergcn::core {

/// Which per-layer refinement to apply after propagation.
enum class Refinement {
  kCosine,   // paper Eq. 6-8: scale rows by (cos(H, X⁰) + ε)
  kNone,     // plain LightGCN-style propagation
  kFixedAlpha,  // GCNII-style: X^{l+1} = (1−α) H + α X⁰ with fixed α
};

/// Readout over the hidden layers.
enum class Readout {
  kSum,   // paper Eq. 9
  kMean,
};

/// LayerGCN hyper-parameters beyond the shared TrainConfig.
struct LayerGcnOptions {
  Refinement refinement = Refinement::kCosine;
  Readout readout = Readout::kSum;
  /// Include X⁰ in the readout (the paper drops it).
  bool include_ego_layer = false;
  /// ε of Eq. 6 (added to the similarity) and Eq. 8 (denominator guard).
  float epsilon = 1e-8f;
  /// α of the kFixedAlpha ablation.
  float fixed_alpha = 0.2f;
  /// Propagate over the full Â at inference (paper behavior). Disable to
  /// measure the cost of evaluating on the pruned graph.
  bool inference_on_full_graph = true;
  /// Record the mean similarity a^l per layer every epoch (Fig. 5).
  bool record_layer_similarities = false;
};

/// The layer-refined GCN recommender.
class LayerGcn : public models::EmbeddingRecommender {
 public:
  explicit LayerGcn(const LayerGcnOptions& options = {})
      : options_(options) {}

  std::string name() const override {
    // The paper distinguishes the full model from the no-pruning variant.
    return "LayerGCN";
  }

  const LayerGcnOptions& options() const { return options_; }

  /// Mean cosine similarity of each hidden layer with the ego layer,
  /// recorded at each PrepareEval() when record_layer_similarities is set:
  /// history[e][l] is layer l+1's mean a at evaluation e (Fig. 5).
  const std::vector<std::vector<double>>& layer_similarity_history() const {
    return similarity_history_;
  }

 protected:
  bool UsesEdgeDropout() const override { return true; }
  ag::Var Propagate(ag::Tape* tape, ag::Var x0, bool training,
                    util::Rng* rng) override;

 private:
  LayerGcnOptions options_;
  std::vector<std::vector<double>> similarity_history_;
};

}  // namespace layergcn::core

#endif  // LAYERGCN_CORE_LAYERGCN_H_
