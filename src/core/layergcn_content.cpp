#include "core/layergcn_content.h"

#include "util/logging.h"

namespace layergcn::core {

void LayerGcnContent::InitExtraParams(const train::TrainConfig& config,
                                      util::Rng* rng) {
  LayerGcn::InitExtraParams(config, rng);
  LAYERGCN_CHECK_EQ(features_.rows(), dataset_->train_graph.num_nodes())
      << "feature matrix must cover every user and item node";
  projection_ = train::Parameter("content_projection", features_.cols(),
                                 config.embedding_dim);
  projection_.InitXavier(rng);
  extra_params_.push_back(&projection_);
}

ag::Var LayerGcnContent::Propagate(ag::Tape* tape, ag::Var x0, bool training,
                                   util::Rng* rng) {
  ag::Var f = tape->Constant(features_);
  ag::Var w = tape->Parameter(&projection_.value, &projection_.grad);
  ag::Var projected = ag::MatMul(f, w);  // N x T

  if (mode_ == ContentMode::kEgoFusion) {
    // Fused ego layer propagates through the layer-refined GCN.
    ag::Var fused_ego = ag::Add(x0, projected);
    return LayerGcn::Propagate(tape, fused_ego, training, rng);
  }
  // Late fusion: pure-ID propagation, content appended at the output.
  ag::Var id_final = LayerGcn::Propagate(tape, x0, training, rng);
  return ag::ConcatCols({id_final, projected});
}

}  // namespace layergcn::core
