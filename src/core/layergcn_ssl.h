// LayerGCN + self-supervised graph contrastive learning — the extension
// the paper names as future work (§VI: "study how self-supervised signals
// can augment the representation learning of LayerGCN").
//
// Following the SGL/SelfCF line of work the paper cites, every training
// batch adds an InfoNCE objective between two stochastically pruned views
// of the interaction graph:
//
//   z¹ = LayerGC(Â¹_p, X⁰),  z² = LayerGC(Â²_p, X⁰)      (two DegreeDrop draws)
//   L_ssl = −(1/|B|) Σ_{v∈B} log  exp(cos(z¹_v, z²_v)/τ)
//                              ───────────────────────────
//                              Σ_{w∈B} exp(cos(z¹_v, z²_w)/τ)
//
//   L = L_bpr + λ‖X⁰‖² + λ_ssl · L_ssl.
//
// The node batch B is the batch's users plus its positive items, capped at
// ssl_max_nodes to bound the |B|² similarity matrix.

#ifndef LAYERGCN_CORE_LAYERGCN_SSL_H_
#define LAYERGCN_CORE_LAYERGCN_SSL_H_

#include <memory>
#include <string>

#include "core/layergcn.h"

namespace layergcn::core {

/// Hyper-parameters of the contrastive extension.
///
/// Scale note: with the mean-reduced BPR loss of this library, the InfoNCE
/// gradient on the embedding table is roughly three orders of magnitude
/// larger than the BPR gradient at initialization (temperature
/// amplification + unit-normalized views vs a mean over ~2k triples), so
/// useful λ_ssl values are ~1e-5..1e-3 — much smaller than the 0.05-0.5
/// range quoted by SGL-style papers whose losses are summed per batch.
struct SslOptions {
  /// λ_ssl weight of the InfoNCE term.
  float weight = 1e-4f;
  /// Softmax temperature τ.
  float temperature = 0.2f;
  /// Cap on contrastive batch size (|B|² similarity matrix).
  int64_t max_nodes = 256;
};

/// LayerGCN trained jointly with a two-view graph contrastive loss.
class LayerGcnSsl : public LayerGcn {
 public:
  explicit LayerGcnSsl(const SslOptions& ssl = {},
                       const LayerGcnOptions& options = {})
      : LayerGcn(options), ssl_(ssl) {}

  std::string name() const override { return "LayerGCN-SSL"; }

  void Init(const data::Dataset& dataset, const train::TrainConfig& config,
            util::Rng* rng) override;
  void BeginEpoch(int epoch, util::Rng* rng) override;

  const SslOptions& ssl_options() const { return ssl_; }

 protected:
  ag::Var BatchLoss(ag::Tape* tape, ag::Var x0,
                    const train::BprBatch& batch, util::Rng* rng) override;

 private:
  /// Layer-refined propagation over an explicit adjacency (a view).
  ag::Var PropagateView(ag::Tape* tape, ag::Var x0,
                        const sparse::CsrMatrix* adj) const;

  SslOptions ssl_;
  std::unique_ptr<graph::EdgeDropout> view_dropout_;
  sparse::CsrMatrix view1_;
  sparse::CsrMatrix view2_;
};

}  // namespace layergcn::core

#endif  // LAYERGCN_CORE_LAYERGCN_SSL_H_
