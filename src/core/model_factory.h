// Factory for every model in the paper's comparison (Table II), keyed by
// the names used there.

#ifndef LAYERGCN_CORE_MODEL_FACTORY_H_
#define LAYERGCN_CORE_MODEL_FACTORY_H_

#include <memory>
#include <string>
#include <vector>

#include "train/recommender.h"
#include "util/status.h"

namespace layergcn::core {

/// Instantiates a model by its Table II name. Supported:
///   "BPR", "MultiVAE", "EHCF", "BUIR", "NGCF", "LR-GCCF", "LightGCN",
///   "UltraGCN", "IMP-GCN", "LayerGCN" (full), "LayerGCN-noDrop"
///   (w/o Dropout variant), "LightGCN-LearnW" (Fig. 1 variant),
///   "LayerGCN-SSL" (self-supervised extension, paper §VI future work).
/// Unknown names are an InvalidArgument (they usually arrive from CLI
/// flags or experiment specs, i.e. user input, not programmer error).
util::StatusOr<std::unique_ptr<train::Recommender>> CreateModelOr(
    const std::string& name);

/// True when `name` is a model CreateModelOr can build.
bool IsKnownModel(const std::string& name);

/// Legacy entry point: CreateModelOr that aborts on unknown names.
std::unique_ptr<train::Recommender> CreateModel(const std::string& name);

/// Adjusts shared config fields to each model's sensible defaults (e.g.
/// LayerGCN-noDrop forces edge_drop_ratio = 0; non-pruning baselines ignore
/// the dropout fields). Returns the adapted copy.
train::TrainConfig AdaptConfig(const std::string& name,
                               const train::TrainConfig& base);

/// Table II model order (baselines first, LayerGCN variants last).
std::vector<std::string> TableTwoModelNames();

}  // namespace layergcn::core

#endif  // LAYERGCN_CORE_MODEL_FACTORY_H_
