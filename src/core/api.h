// Public facade of the LayerGCN library.
//
// Downstream users can depend on this single header for the common
// workflow:
//
//   #include "core/api.h"
//   using namespace layergcn;
//
//   data::Dataset ds = data::MakeBenchmarkDataset("mooc", /*scale=*/1.0, 42);
//   core::LayerGcn model;
//   train::TrainConfig cfg;                  // paper defaults
//   train::TrainResult r = train::FitRecommender(&model, ds, cfg);
//   tensor::Matrix scores = model.ScoreUsers({0, 1, 2});
//
// Individual headers remain available for finer-grained control.

#ifndef LAYERGCN_CORE_API_H_
#define LAYERGCN_CORE_API_H_

#include "core/layergcn.h"          // IWYU pragma: export
#include "core/layergcn_content.h"  // IWYU pragma: export
#include "core/layergcn_ssl.h"      // IWYU pragma: export
#include "core/model_factory.h"     // IWYU pragma: export
#include "data/dataset.h"           // IWYU pragma: export
#include "data/kcore.h"             // IWYU pragma: export
#include "data/loader.h"            // IWYU pragma: export
#include "data/split.h"             // IWYU pragma: export
#include "data/synthetic.h"         // IWYU pragma: export
#include "eval/evaluator.h"         // IWYU pragma: export
#include "eval/metrics.h"           // IWYU pragma: export
#include "eval/stats.h"             // IWYU pragma: export
#include "graph/bipartite_graph.h"  // IWYU pragma: export
#include "graph/edge_dropout.h"     // IWYU pragma: export
#include "train/recommender.h"      // IWYU pragma: export
#include "train/trainer.h"          // IWYU pragma: export

#endif  // LAYERGCN_CORE_API_H_
