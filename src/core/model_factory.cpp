#include "core/model_factory.h"

#include "core/layergcn.h"
#include "core/layergcn_ssl.h"
#include "models/bpr_mf.h"
#include "models/buir.h"
#include "models/ehcf.h"
#include "models/imp_gcn.h"
#include "models/lightgcn.h"
#include "models/lr_gccf.h"
#include "models/multivae.h"
#include "models/ngcf.h"
#include "models/ultragcn.h"
#include "util/logging.h"

namespace layergcn::core {

util::StatusOr<std::unique_ptr<train::Recommender>> CreateModelOr(
    const std::string& name) {
  std::unique_ptr<train::Recommender> model;
  if (name == "BPR") model = std::make_unique<models::BprMf>();
  else if (name == "MultiVAE") model = std::make_unique<models::MultiVae>();
  else if (name == "EHCF") model = std::make_unique<models::Ehcf>();
  else if (name == "BUIR") model = std::make_unique<models::Buir>();
  else if (name == "NGCF") model = std::make_unique<models::Ngcf>();
  else if (name == "LR-GCCF") model = std::make_unique<models::LrGccf>();
  else if (name == "LightGCN") model = std::make_unique<models::LightGcn>();
  else if (name == "LightGCN-LearnW") {
    model = std::make_unique<models::LightGcn>(
        models::LightGcnReadout::kLearnableWeights);
  } else if (name == "UltraGCN") {
    model = std::make_unique<models::UltraGcn>();
  } else if (name == "IMP-GCN") {
    model = std::make_unique<models::ImpGcn>();
  } else if (name == "LayerGCN" || name == "LayerGCN-noDrop") {
    model = std::make_unique<LayerGcn>();
  } else if (name == "LayerGCN-SSL") {
    model = std::make_unique<LayerGcnSsl>();
  } else {
    return util::InvalidArgumentError("unknown model: " + name);
  }
  return model;
}

bool IsKnownModel(const std::string& name) {
  return CreateModelOr(name).ok();
}

std::unique_ptr<train::Recommender> CreateModel(const std::string& name) {
  util::StatusOr<std::unique_ptr<train::Recommender>> model =
      CreateModelOr(name);
  LAYERGCN_CHECK(model.ok()) << model.status().message();
  return std::move(model).value();
}

train::TrainConfig AdaptConfig(const std::string& name,
                               const train::TrainConfig& base) {
  train::TrainConfig cfg = base;
  if (name == "LayerGCN-noDrop") {
    cfg.edge_drop_ratio = 0.0;
    cfg.edge_drop_kind = graph::EdgeDropKind::kNone;
  }
  // The paper fixes LayerGCN at 4 layers but lets LightGCN search [1, 4];
  // the overall-comparison bench performs that search itself, so no layer
  // override happens here.
  return cfg;
}

std::vector<std::string> TableTwoModelNames() {
  return {"BPR",      "MultiVAE", "EHCF",     "BUIR",
          "NGCF",     "LR-GCCF",  "LightGCN", "UltraGCN",
          "IMP-GCN",  "LayerGCN-noDrop", "LayerGCN"};
}

}  // namespace layergcn::core
