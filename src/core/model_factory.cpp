#include "core/model_factory.h"

#include "core/layergcn.h"
#include "core/layergcn_ssl.h"
#include "models/bpr_mf.h"
#include "models/buir.h"
#include "models/ehcf.h"
#include "models/imp_gcn.h"
#include "models/lightgcn.h"
#include "models/lr_gccf.h"
#include "models/multivae.h"
#include "models/ngcf.h"
#include "models/ultragcn.h"
#include "util/logging.h"

namespace layergcn::core {

std::unique_ptr<train::Recommender> CreateModel(const std::string& name) {
  if (name == "BPR") return std::make_unique<models::BprMf>();
  if (name == "MultiVAE") return std::make_unique<models::MultiVae>();
  if (name == "EHCF") return std::make_unique<models::Ehcf>();
  if (name == "BUIR") return std::make_unique<models::Buir>();
  if (name == "NGCF") return std::make_unique<models::Ngcf>();
  if (name == "LR-GCCF") return std::make_unique<models::LrGccf>();
  if (name == "LightGCN") return std::make_unique<models::LightGcn>();
  if (name == "LightGCN-LearnW") {
    return std::make_unique<models::LightGcn>(
        models::LightGcnReadout::kLearnableWeights);
  }
  if (name == "UltraGCN") return std::make_unique<models::UltraGcn>();
  if (name == "IMP-GCN") return std::make_unique<models::ImpGcn>();
  if (name == "LayerGCN" || name == "LayerGCN-noDrop") {
    return std::make_unique<LayerGcn>();
  }
  if (name == "LayerGCN-SSL") return std::make_unique<LayerGcnSsl>();
  LAYERGCN_CHECK(false) << "unknown model: " << name;
  return nullptr;
}

train::TrainConfig AdaptConfig(const std::string& name,
                               const train::TrainConfig& base) {
  train::TrainConfig cfg = base;
  if (name == "LayerGCN-noDrop") {
    cfg.edge_drop_ratio = 0.0;
    cfg.edge_drop_kind = graph::EdgeDropKind::kNone;
  }
  // The paper fixes LayerGCN at 4 layers but lets LightGCN search [1, 4];
  // the overall-comparison bench performs that search itself, so no layer
  // override happens here.
  return cfg;
}

std::vector<std::string> TableTwoModelNames() {
  return {"BPR",      "MultiVAE", "EHCF",     "BUIR",
          "NGCF",     "LR-GCCF",  "LightGCN", "UltraGCN",
          "IMP-GCN",  "LayerGCN-noDrop", "LayerGCN"};
}

}  // namespace layergcn::core
