#include "autograd/tape.h"

#include <utility>

#include "obs/trace.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace layergcn::ag {

Var Tape::Parameter(const Matrix* value, Matrix* grad_sink) {
  LAYERGCN_CHECK(value != nullptr && grad_sink != nullptr);
  LAYERGCN_CHECK(value->rows() == grad_sink->rows() &&
                 value->cols() == grad_sink->cols())
      << "Parameter grad sink shape mismatch";
  Node n;
  n.external = value;
  n.grad_sink = grad_sink;
  n.requires_grad = true;
  nodes_.push_back(std::move(n));
  return Var{this, static_cast<int32_t>(nodes_.size() - 1)};
}

Var Tape::Constant(Matrix value) {
  Node n;
  n.owned_value = std::move(value);
  n.requires_grad = false;
  nodes_.push_back(std::move(n));
  return Var{this, static_cast<int32_t>(nodes_.size() - 1)};
}

const Tape::Node& Tape::node(Var v) const {
  LAYERGCN_CHECK(v.tape == this) << "Var belongs to a different tape";
  LAYERGCN_CHECK(v.id >= 0 && v.id < static_cast<int32_t>(nodes_.size()));
  return nodes_[static_cast<size_t>(v.id)];
}

Tape::Node& Tape::node(Var v) {
  return const_cast<Node&>(static_cast<const Tape*>(this)->node(v));
}

const Matrix& Tape::value(Var v) const {
  const Node& n = node(v);
  return n.external != nullptr ? *n.external : n.owned_value;
}

bool Tape::requires_grad(Var v) const { return node(v).requires_grad; }

const Matrix& Tape::grad(Var v) const { return node(v).grad; }

Var Tape::Emit(Matrix value, bool requires_grad, BackwardFn backward,
               const char* op_name) {
  Node n;
  n.owned_value = std::move(value);
  n.requires_grad = requires_grad;
  n.op_name = op_name;
  if (requires_grad) n.backward = std::move(backward);
  nodes_.push_back(std::move(n));
  return Var{this, static_cast<int32_t>(nodes_.size() - 1)};
}

void Tape::AccumulateGrad(Var v, const Matrix& g) {
  Node& n = node(v);
  if (!n.requires_grad) return;
  const Matrix& val = n.external != nullptr ? *n.external : n.owned_value;
  LAYERGCN_CHECK(g.rows() == val.rows() && g.cols() == val.cols())
      << "gradient shape mismatch: " << g.rows() << "x" << g.cols() << " vs "
      << val.rows() << "x" << val.cols();
  if (n.grad.empty()) {
    n.grad = g;
  } else {
    tensor::AddInPlace(&n.grad, g);
  }
}

void Tape::AccumulateGrad(Var v, Matrix&& g) {
  Node& n = node(v);
  if (!n.requires_grad) return;
  const Matrix& val = n.external != nullptr ? *n.external : n.owned_value;
  LAYERGCN_CHECK(g.rows() == val.rows() && g.cols() == val.cols())
      << "gradient shape mismatch";
  if (n.grad.empty()) {
    n.grad = std::move(g);
  } else {
    tensor::AddInPlace(&n.grad, g);
  }
}

void Tape::Backward(Var loss) {
  LAYERGCN_CHECK(!backward_done_) << "Backward() may run once per tape";
  backward_done_ = true;
  const Matrix& lv = value(loss);
  LAYERGCN_CHECK(lv.rows() == 1 && lv.cols() == 1)
      << "Backward() requires a scalar (1x1) loss";
  AccumulateGrad(loss, Matrix::Scalar(1.f));

  OBS_SPAN("tape.backward");
  for (int64_t i = loss.id; i >= 0; --i) {
    Node& n = nodes_[static_cast<size_t>(i)];
    if (!n.requires_grad || n.grad.empty()) continue;
    if (n.backward) {
      if (n.op_name != nullptr) {
        OBS_SPAN_DYNAMIC(n.op_name);
        n.backward(this, n.grad);
      } else {
        n.backward(this, n.grad);
      }
    }
    if (n.grad_sink != nullptr) tensor::AddInPlace(n.grad_sink, n.grad);
  }
}

}  // namespace layergcn::ag
