// Tape-based reverse-mode automatic differentiation over tensor::Matrix.
//
// Usage pattern (one tape per training step):
//
//   ag::Tape tape;
//   ag::Var x0 = tape.Parameter(&emb.value, &emb.grad);   // leaf
//   ag::Var h  = ag::SpMMSymmetric(&adj, x0);             // ops build graph
//   ag::Var l  = ag::Mean(ag::Softplus(...));
//   tape.Backward(l);                                     // fills emb.grad
//
// Leaves created with Parameter() reference external value storage and
// accumulate their gradients into an external sink matrix, so parameters
// persist across steps while the tape itself is throwaway. Ops are free
// functions in autograd/ops.h. Backward functions only run for nodes whose
// gradient is actually reached from the loss, and gradient buffers are
// allocated lazily, so untouched subgraphs cost nothing in the backward
// pass.

#ifndef LAYERGCN_AUTOGRAD_TAPE_H_
#define LAYERGCN_AUTOGRAD_TAPE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "tensor/matrix.h"

namespace layergcn::ag {

using tensor::Matrix;

class Tape;

/// Lightweight handle to a node on a tape.
struct Var {
  Tape* tape = nullptr;
  int32_t id = -1;

  bool valid() const { return tape != nullptr && id >= 0; }
};

/// The autodiff tape: owns node values, gradients, and backward closures.
class Tape {
 public:
  Tape() = default;
  Tape(const Tape&) = delete;
  Tape& operator=(const Tape&) = delete;

  /// Registers a differentiable leaf whose value lives in *value (not
  /// copied; must outlive the tape). After Backward(), the leaf's gradient
  /// is accumulated into *grad_sink, which must have the same shape.
  Var Parameter(const Matrix* value, Matrix* grad_sink);

  /// Registers a non-differentiable leaf holding `value`.
  Var Constant(Matrix value);

  /// Value of a node.
  const Matrix& value(Var v) const;

  /// True if gradients flow through this node.
  bool requires_grad(Var v) const;

  /// Gradient buffer of a node after Backward(); empty Matrix if no
  /// gradient reached it.
  const Matrix& grad(Var v) const;

  /// Runs reverse-mode accumulation from `loss`, which must be 1x1. May be
  /// called once per tape.
  void Backward(Var loss);

  /// Number of nodes recorded (for tests / introspection).
  int64_t num_nodes() const { return static_cast<int64_t>(nodes_.size()); }

  // --- Internal API used by the op library (autograd/ops.cpp). ---

  /// Backward closure: receives the node's output gradient and must
  /// accumulate into the inputs via AccumulateGrad().
  using BackwardFn = std::function<void(Tape*, const Matrix&)>;

  /// Records an interior node. `requires_grad` should be true iff any input
  /// requires grad; `backward` may be empty in that case. `op_name`, when
  /// given, must be a string literal (stored by pointer); it labels the
  /// node's backward closure in trace spans and per-op timing counters.
  Var Emit(Matrix value, bool requires_grad, BackwardFn backward,
           const char* op_name = nullptr);

  /// Adds `g` into the gradient buffer of `v` (allocating it on first use).
  /// No-op if `v` does not require grad.
  void AccumulateGrad(Var v, const Matrix& g);

  /// Move-friendly overload: installs `g` directly when the buffer is empty.
  void AccumulateGrad(Var v, Matrix&& g);

 private:
  struct Node {
    Matrix owned_value;              // storage unless external
    const Matrix* external = nullptr;  // set for Parameter leaves
    Matrix* grad_sink = nullptr;       // set for Parameter leaves
    Matrix grad;                       // lazily allocated
    bool requires_grad = false;
    BackwardFn backward;
    const char* op_name = nullptr;     // string literal; labels trace spans
  };

  const Node& node(Var v) const;
  Node& node(Var v);

  std::vector<Node> nodes_;
  bool backward_done_ = false;
};

}  // namespace layergcn::ag

#endif  // LAYERGCN_AUTOGRAD_TAPE_H_
