#include "autograd/ops.h"

#include <cmath>
#include <utility>

#include "obs/trace.h"
#include "tensor/ops.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace layergcn::ag {

namespace t = layergcn::tensor;
namespace par = layergcn::util::parallel;

namespace {

// Row-block size matching tensor/ops.cpp: one block is ~kDefaultGrain
// scalar elements. Fixed for a shape, so blocked backward loops stay
// bit-exact at any worker count.
int64_t RowGrain(int64_t cols) {
  return std::max<int64_t>(1, par::kDefaultGrain / std::max<int64_t>(cols, 1));
}

Tape* TapeOf(Var v) {
  LAYERGCN_CHECK(v.valid()) << "invalid Var";
  return v.tape;
}

Tape* SameTape(Var a, Var b) {
  Tape* tp = TapeOf(a);
  LAYERGCN_CHECK(TapeOf(b) == tp) << "Vars from different tapes";
  return tp;
}

}  // namespace

Var Add(Var a, Var b) {
  Tape* tp = SameTape(a, b);
  Matrix out = t::Add(tp->value(a), tp->value(b));
  const bool rg = tp->requires_grad(a) || tp->requires_grad(b);
  return tp->Emit(std::move(out), rg, [a, b](Tape* tape, const Matrix& g) {
    tape->AccumulateGrad(a, g);
    tape->AccumulateGrad(b, g);
  }, "bw.add");
}

Var Sub(Var a, Var b) {
  Tape* tp = SameTape(a, b);
  Matrix out = t::Sub(tp->value(a), tp->value(b));
  const bool rg = tp->requires_grad(a) || tp->requires_grad(b);
  return tp->Emit(std::move(out), rg, [a, b](Tape* tape, const Matrix& g) {
    tape->AccumulateGrad(a, g);
    tape->AccumulateGrad(b, t::Negate(g));
  }, "bw.sub");
}

Var Scale(Var a, float alpha) {
  Tape* tp = TapeOf(a);
  Matrix out = t::Scale(tp->value(a), alpha);
  return tp->Emit(std::move(out), tp->requires_grad(a),
                  [a, alpha](Tape* tape, const Matrix& g) {
                    tape->AccumulateGrad(a, t::Scale(g, alpha));
                  }, "bw.scale");
}

Var AddScalar(Var a, float c) {
  Tape* tp = TapeOf(a);
  Matrix out = t::AddScalar(tp->value(a), c);
  return tp->Emit(std::move(out), tp->requires_grad(a),
                  [a](Tape* tape, const Matrix& g) {
                    tape->AccumulateGrad(a, g);
                  }, "bw.add_scalar");
}

Var Negate(Var a) { return Scale(a, -1.f); }

Var Hadamard(Var a, Var b) {
  Tape* tp = SameTape(a, b);
  Matrix out = t::Hadamard(tp->value(a), tp->value(b));
  const bool rg = tp->requires_grad(a) || tp->requires_grad(b);
  return tp->Emit(std::move(out), rg, [a, b](Tape* tape, const Matrix& g) {
    tape->AccumulateGrad(a, t::Hadamard(g, tape->value(b)));
    tape->AccumulateGrad(b, t::Hadamard(g, tape->value(a)));
  }, "bw.hadamard");
}

Var MatMul(Var a, Var b, bool trans_a, bool trans_b) {
  Tape* tp = SameTape(a, b);
  OBS_SPAN("fw.matmul");
  Matrix out = t::MatMul(tp->value(a), tp->value(b), trans_a, trans_b);
  const bool rg = tp->requires_grad(a) || tp->requires_grad(b);
  return tp->Emit(
      std::move(out), rg,
      [a, b, trans_a, trans_b](Tape* tape, const Matrix& g) {
        const Matrix& av = tape->value(a);
        const Matrix& bv = tape->value(b);
        if (tape->requires_grad(a)) {
          Matrix da;
          if (!trans_a && !trans_b) {
            da = t::MatMul(g, bv, false, true);  // G·Bᵀ
          } else if (!trans_a && trans_b) {
            da = t::MatMul(g, bv, false, false);  // G·B
          } else if (trans_a && !trans_b) {
            da = t::MatMul(bv, g, false, true);  // B·Gᵀ
          } else {
            da = t::MatMul(bv, g, true, true);  // Bᵀ·Gᵀ
          }
          tape->AccumulateGrad(a, std::move(da));
        }
        if (tape->requires_grad(b)) {
          Matrix db;
          if (!trans_a && !trans_b) {
            db = t::MatMul(av, g, true, false);  // Aᵀ·G
          } else if (!trans_a && trans_b) {
            db = t::MatMul(g, av, true, false);  // Gᵀ·A
          } else if (trans_a && !trans_b) {
            db = t::MatMul(av, g, false, false);  // A·G
          } else {
            db = t::MatMul(g, av, true, true);  // Gᵀ·Aᵀ
          }
          tape->AccumulateGrad(b, std::move(db));
        }
      },
      "bw.matmul");
}

Var Transpose(Var a) {
  Tape* tp = TapeOf(a);
  Matrix out = t::Transpose(tp->value(a));
  return tp->Emit(std::move(out), tp->requires_grad(a),
                  [a](Tape* tape, const Matrix& g) {
                    tape->AccumulateGrad(a, t::Transpose(g));
                  }, "bw.transpose");
}

Var SpMM(const sparse::CsrMatrix* m, const sparse::CsrMatrix* m_transpose,
         Var x) {
  LAYERGCN_CHECK(m != nullptr && m_transpose != nullptr);
  Tape* tp = TapeOf(x);
  OBS_SPAN("fw.spmm");
  Matrix out = m->Multiply(tp->value(x));
  return tp->Emit(std::move(out), tp->requires_grad(x),
                  [m_transpose, x](Tape* tape, const Matrix& g) {
                    tape->AccumulateGrad(x, m_transpose->Multiply(g));
                  }, "bw.spmm");
}

Var SpMMSymmetric(const sparse::CsrMatrix* m, Var x) {
  return SpMM(m, m, x);
}

Var GatherRows(Var x, std::vector<int32_t> rows) {
  Tape* tp = TapeOf(x);
  OBS_SPAN("fw.gather_rows");
  Matrix out = t::GatherRows(tp->value(x), rows);
  return tp->Emit(
      std::move(out), tp->requires_grad(x),
      [x, rows = std::move(rows)](Tape* tape, const Matrix& g) {
        Matrix dx(tape->value(x).rows(), tape->value(x).cols());
        t::ScatterAddRows(&dx, rows, g);
        tape->AccumulateGrad(x, std::move(dx));
      },
      "bw.gather_rows");
}

Var ScaleRows(Var x, Var s) {
  Tape* tp = SameTape(x, s);
  Matrix out = t::ScaleRows(tp->value(x), tp->value(s));
  const bool rg = tp->requires_grad(x) || tp->requires_grad(s);
  return tp->Emit(std::move(out), rg, [x, s](Tape* tape, const Matrix& g) {
    if (tape->requires_grad(x)) {
      tape->AccumulateGrad(x, t::ScaleRows(g, tape->value(s)));
    }
    if (tape->requires_grad(s)) {
      tape->AccumulateGrad(s, t::RowDots(g, tape->value(x)));
    }
  }, "bw.scale_rows");
}

Var RowDots(Var a, Var b) {
  Tape* tp = SameTape(a, b);
  OBS_SPAN("fw.row_dots");
  Matrix out = t::RowDots(tp->value(a), tp->value(b));
  const bool rg = tp->requires_grad(a) || tp->requires_grad(b);
  return tp->Emit(std::move(out), rg, [a, b](Tape* tape, const Matrix& g) {
    // g is Nx1; d a_r = g_r * b_r.
    if (tape->requires_grad(a)) {
      tape->AccumulateGrad(a, t::ScaleRows(tape->value(b), g));
    }
    if (tape->requires_grad(b)) {
      tape->AccumulateGrad(b, t::ScaleRows(tape->value(a), g));
    }
  }, "bw.row_dots");
}

Var RowwiseCosine(Var a, Var b, float eps) {
  Tape* tp = SameTape(a, b);
  OBS_SPAN("fw.rowwise_cosine");
  Matrix out = t::RowwiseCosine(tp->value(a), tp->value(b), eps);
  const bool rg = tp->requires_grad(a) || tp->requires_grad(b);
  return tp->Emit(
      std::move(out), rg, [a, b, eps](Tape* tape, const Matrix& g) {
        // Per row: c = d / m with d = <a,b>, m = max(|a||b|, eps).
        // If |a||b| > eps:  dc/da = b/m − c·a/|a|²,  dc/db symmetric.
        // Else m is the constant eps: dc/da = b/eps, dc/db = a/eps.
        const Matrix& av = tape->value(a);
        const Matrix& bv = tape->value(b);
        const bool need_a = tape->requires_grad(a);
        const bool need_b = tape->requires_grad(b);
        Matrix da(need_a ? av.rows() : 0, need_a ? av.cols() : 0);
        Matrix db(need_b ? bv.rows() : 0, need_b ? bv.cols() : 0);
        const int64_t cols = av.cols();
        par::For(av.rows(), [&](int64_t row_lo, int64_t row_hi) {
        for (int64_t r = row_lo; r < row_hi; ++r) {
          const float gr = g(r, 0);
          if (gr == 0.f) continue;
          const float* pa = av.row(r);
          const float* pb = bv.row(r);
          double dot = 0.0, na2 = 0.0, nb2 = 0.0;
          for (int64_t c = 0; c < cols; ++c) {
            dot += pa[c] * pb[c];
            na2 += pa[c] * pa[c];
            nb2 += pb[c] * pb[c];
          }
          const double na = std::sqrt(na2);
          const double nb = std::sqrt(nb2);
          const double prod = na * nb;
          if (prod > eps) {
            const double cval = dot / prod;
            if (need_a) {
              const double inv_m = 1.0 / prod;
              const double coef = cval / na2;
              float* pda = da.row(r);
              for (int64_t c = 0; c < cols; ++c) {
                pda[c] += gr * static_cast<float>(pb[c] * inv_m -
                                                  coef * pa[c]);
              }
            }
            if (need_b) {
              const double inv_m = 1.0 / prod;
              const double coef = cval / nb2;
              float* pdb = db.row(r);
              for (int64_t c = 0; c < cols; ++c) {
                pdb[c] += gr * static_cast<float>(pa[c] * inv_m -
                                                  coef * pb[c]);
              }
            }
          } else {
            const double inv_eps = 1.0 / eps;
            if (need_a) {
              float* pda = da.row(r);
              for (int64_t c = 0; c < cols; ++c) {
                pda[c] += gr * static_cast<float>(pb[c] * inv_eps);
              }
            }
            if (need_b) {
              float* pdb = db.row(r);
              for (int64_t c = 0; c < cols; ++c) {
                pdb[c] += gr * static_cast<float>(pa[c] * inv_eps);
              }
            }
          }
        }
        }, RowGrain(cols));
        if (need_a) tape->AccumulateGrad(a, std::move(da));
        if (need_b) tape->AccumulateGrad(b, std::move(db));
      },
      "bw.rowwise_cosine");
}

Var AddRowVector(Var x, Var bias) {
  Tape* tp = SameTape(x, bias);
  Matrix out = t::AddRowVector(tp->value(x), tp->value(bias));
  const bool rg = tp->requires_grad(x) || tp->requires_grad(bias);
  return tp->Emit(std::move(out), rg, [x, bias](Tape* tape, const Matrix& g) {
    tape->AccumulateGrad(x, g);
    if (tape->requires_grad(bias)) {
      tape->AccumulateGrad(bias, t::ColSums(g));
    }
  }, "bw.add_row_vector");
}

Var NormalizeRows(Var x, float eps) {
  Tape* tp = TapeOf(x);
  Matrix out = t::NormalizeRowsL2(tp->value(x), eps);
  Matrix saved = out;  // y = x/‖x‖; backward uses y
  return tp->Emit(
      std::move(out), tp->requires_grad(x),
      [x, saved = std::move(saved), eps](Tape* tape, const Matrix& g) {
        // dy/dx: dL/dx_r = (g_r − y_r·<g_r, y_r>) / max(‖x_r‖, eps).
        const Matrix& xv = tape->value(x);
        Matrix dx(xv.rows(), xv.cols());
        const int64_t cols = xv.cols();
        par::For(xv.rows(), [&](int64_t row_lo, int64_t row_hi) {
          for (int64_t r = row_lo; r < row_hi; ++r) {
            const float* px = xv.row(r);
            const float* py = saved.row(r);
            const float* pg = g.row(r);
            double norm2 = 0.0, gy = 0.0;
            for (int64_t c = 0; c < cols; ++c) {
              norm2 += static_cast<double>(px[c]) * px[c];
              gy += static_cast<double>(pg[c]) * py[c];
            }
            const double norm =
                std::max(std::sqrt(norm2), static_cast<double>(eps));
            float* pd = dx.row(r);
            for (int64_t c = 0; c < cols; ++c) {
              pd[c] = static_cast<float>((pg[c] - py[c] * gy) / norm);
            }
          }
        }, RowGrain(cols));
        tape->AccumulateGrad(x, std::move(dx));
      },
      "bw.normalize_rows");
}

Var Sigmoid(Var a) {
  Tape* tp = TapeOf(a);
  Matrix out = t::Sigmoid(tp->value(a));
  Matrix saved = out;  // backward needs σ(x)
  return tp->Emit(std::move(out), tp->requires_grad(a),
                  [a, saved = std::move(saved)](Tape* tape, const Matrix& g) {
                    Matrix dx(g.rows(), g.cols());
                    par::For(g.size(), [&](int64_t lo, int64_t hi) {
                      for (int64_t i = lo; i < hi; ++i) {
                        const float s = saved.data()[i];
                        dx.data()[i] = g.data()[i] * s * (1.f - s);
                      }
                    });
                    tape->AccumulateGrad(a, std::move(dx));
                  }, "bw.sigmoid");
}

Var Tanh(Var a) {
  Tape* tp = TapeOf(a);
  Matrix out = t::Tanh(tp->value(a));
  Matrix saved = out;
  return tp->Emit(std::move(out), tp->requires_grad(a),
                  [a, saved = std::move(saved)](Tape* tape, const Matrix& g) {
                    Matrix dx(g.rows(), g.cols());
                    par::For(g.size(), [&](int64_t lo, int64_t hi) {
                      for (int64_t i = lo; i < hi; ++i) {
                        const float th = saved.data()[i];
                        dx.data()[i] = g.data()[i] * (1.f - th * th);
                      }
                    });
                    tape->AccumulateGrad(a, std::move(dx));
                  }, "bw.tanh");
}

Var Relu(Var a) {
  Tape* tp = TapeOf(a);
  Matrix out = t::Relu(tp->value(a));
  return tp->Emit(std::move(out), tp->requires_grad(a),
                  [a](Tape* tape, const Matrix& g) {
                    const Matrix& x = tape->value(a);
                    Matrix dx(g.rows(), g.cols());
                    par::For(g.size(), [&](int64_t lo, int64_t hi) {
                      for (int64_t i = lo; i < hi; ++i) {
                        dx.data()[i] = x.data()[i] > 0.f ? g.data()[i] : 0.f;
                      }
                    });
                    tape->AccumulateGrad(a, std::move(dx));
                  }, "bw.relu");
}

Var LeakyRelu(Var a, float slope) {
  Tape* tp = TapeOf(a);
  Matrix out = t::LeakyRelu(tp->value(a), slope);
  return tp->Emit(std::move(out), tp->requires_grad(a),
                  [a, slope](Tape* tape, const Matrix& g) {
                    const Matrix& x = tape->value(a);
                    Matrix dx(g.rows(), g.cols());
                    par::For(g.size(), [&](int64_t lo, int64_t hi) {
                      for (int64_t i = lo; i < hi; ++i) {
                        dx.data()[i] = x.data()[i] > 0.f ? g.data()[i]
                                                         : slope * g.data()[i];
                      }
                    });
                    tape->AccumulateGrad(a, std::move(dx));
                  }, "bw.leaky_relu");
}

Var Softplus(Var a) {
  Tape* tp = TapeOf(a);
  OBS_SPAN("fw.softplus");
  Matrix out = t::Softplus(tp->value(a));
  return tp->Emit(std::move(out), tp->requires_grad(a),
                  [a](Tape* tape, const Matrix& g) {
                    // d softplus(x) = σ(x).
                    Matrix dx = t::Sigmoid(tape->value(a));
                    t::HadamardInPlace(&dx, g);
                    tape->AccumulateGrad(a, std::move(dx));
                  }, "bw.softplus");
}

Var Exp(Var a) {
  Tape* tp = TapeOf(a);
  Matrix out = t::Exp(tp->value(a));
  Matrix saved = out;
  return tp->Emit(std::move(out), tp->requires_grad(a),
                  [a, saved = std::move(saved)](Tape* tape, const Matrix& g) {
                    Matrix dx = t::Hadamard(g, saved);
                    tape->AccumulateGrad(a, std::move(dx));
                  }, "bw.exp");
}

Var Log(Var a) {
  Tape* tp = TapeOf(a);
  Matrix out = t::Log(tp->value(a));
  return tp->Emit(std::move(out), tp->requires_grad(a),
                  [a](Tape* tape, const Matrix& g) {
                    const Matrix& x = tape->value(a);
                    Matrix dx(g.rows(), g.cols());
                    par::For(g.size(), [&](int64_t lo, int64_t hi) {
                      for (int64_t i = lo; i < hi; ++i) {
                        dx.data()[i] = g.data()[i] / x.data()[i];
                      }
                    });
                    tape->AccumulateGrad(a, std::move(dx));
                  }, "bw.log");
}

Var Square(Var a) {
  Tape* tp = TapeOf(a);
  Matrix out = t::Square(tp->value(a));
  return tp->Emit(std::move(out), tp->requires_grad(a),
                  [a](Tape* tape, const Matrix& g) {
                    Matrix dx = t::Hadamard(g, tape->value(a));
                    t::ScaleInPlace(&dx, 2.f);
                    tape->AccumulateGrad(a, std::move(dx));
                  }, "bw.square");
}

Var Dropout(Var x, const Matrix& mask) {
  Tape* tp = TapeOf(x);
  Var m = tp->Constant(mask);
  return Hadamard(x, m);
}

Var Sum(Var a) {
  Tape* tp = TapeOf(a);
  Matrix out = Matrix::Scalar(static_cast<float>(t::SumAll(tp->value(a))));
  return tp->Emit(std::move(out), tp->requires_grad(a),
                  [a](Tape* tape, const Matrix& g) {
                    const Matrix& x = tape->value(a);
                    Matrix dx(x.rows(), x.cols(), g.scalar());
                    tape->AccumulateGrad(a, std::move(dx));
                  }, "bw.sum");
}

Var Mean(Var a) {
  Tape* tp = TapeOf(a);
  const Matrix& x = tp->value(a);
  LAYERGCN_CHECK_GT(x.size(), 0) << "Mean of empty matrix";
  Matrix out = Matrix::Scalar(static_cast<float>(t::MeanAll(x)));
  return tp->Emit(std::move(out), tp->requires_grad(a),
                  [a](Tape* tape, const Matrix& g) {
                    const Matrix& x = tape->value(a);
                    const float v = g.scalar() / static_cast<float>(x.size());
                    Matrix dx(x.rows(), x.cols(), v);
                    tape->AccumulateGrad(a, std::move(dx));
                  }, "bw.mean");
}

Var SumSquares(Var a) {
  Tape* tp = TapeOf(a);
  Matrix out = Matrix::Scalar(static_cast<float>(t::SumSquares(tp->value(a))));
  return tp->Emit(std::move(out), tp->requires_grad(a),
                  [a](Tape* tape, const Matrix& g) {
                    Matrix dx = t::Scale(tape->value(a), 2.f * g.scalar());
                    tape->AccumulateGrad(a, std::move(dx));
                  }, "bw.sum_squares");
}

Var AddN(const std::vector<Var>& xs) {
  LAYERGCN_CHECK(!xs.empty()) << "AddN needs at least one input";
  Tape* tp = TapeOf(xs[0]);
  OBS_SPAN("fw.add_n");
  Matrix out = tp->value(xs[0]);
  bool rg = tp->requires_grad(xs[0]);
  for (size_t i = 1; i < xs.size(); ++i) {
    LAYERGCN_CHECK(xs[i].tape == tp);
    t::AddInPlace(&out, tp->value(xs[i]));
    rg = rg || tp->requires_grad(xs[i]);
  }
  return tp->Emit(std::move(out), rg,
                  [xs](Tape* tape, const Matrix& g) {
                    for (Var x : xs) tape->AccumulateGrad(x, g);
                  }, "bw.add_n");
}

Var LinComb(const std::vector<Var>& xs, Var w) {
  LAYERGCN_CHECK(!xs.empty());
  Tape* tp = TapeOf(w);
  const Matrix& wv = tp->value(w);
  LAYERGCN_CHECK(wv.rows() == static_cast<int64_t>(xs.size()) &&
                 wv.cols() == 1)
      << "LinComb weights must be Kx1 with K = |xs|";
  Matrix out(tp->value(xs[0]).rows(), tp->value(xs[0]).cols());
  bool rg = tp->requires_grad(w);
  for (size_t k = 0; k < xs.size(); ++k) {
    LAYERGCN_CHECK(xs[k].tape == tp);
    t::AxpyInPlace(&out, wv(static_cast<int64_t>(k), 0), tp->value(xs[k]));
    rg = rg || tp->requires_grad(xs[k]);
  }
  return tp->Emit(
      std::move(out), rg, [xs, w](Tape* tape, const Matrix& g) {
        const Matrix& wv = tape->value(w);
        Matrix dw(wv.rows(), 1);
        bool need_dw = tape->requires_grad(w);
        for (size_t k = 0; k < xs.size(); ++k) {
          if (tape->requires_grad(xs[k])) {
            tape->AccumulateGrad(
                xs[k], t::Scale(g, wv(static_cast<int64_t>(k), 0)));
          }
          if (need_dw) {
            dw(static_cast<int64_t>(k), 0) = static_cast<float>(
                t::SumAll(t::Hadamard(g, tape->value(xs[k]))));
          }
        }
        if (need_dw) tape->AccumulateGrad(w, std::move(dw));
      },
      "bw.lin_comb");
}

Var ConcatCols(const std::vector<Var>& xs) {
  LAYERGCN_CHECK(!xs.empty());
  Tape* tp = TapeOf(xs[0]);
  std::vector<const Matrix*> parts;
  parts.reserve(xs.size());
  bool rg = false;
  for (Var x : xs) {
    LAYERGCN_CHECK(x.tape == tp);
    parts.push_back(&tp->value(x));
    rg = rg || tp->requires_grad(x);
  }
  Matrix out = t::ConcatCols(parts);
  return tp->Emit(std::move(out), rg, [xs](Tape* tape, const Matrix& g) {
    int64_t offset = 0;
    for (Var x : xs) {
      const int64_t w = tape->value(x).cols();
      if (tape->requires_grad(x)) {
        tape->AccumulateGrad(x, t::SliceCols(g, offset, offset + w));
      }
      offset += w;
    }
  }, "bw.concat_cols");
}

Var SoftmaxRows(Var a) {
  Tape* tp = TapeOf(a);
  Matrix out = t::SoftmaxRows(tp->value(a));
  Matrix saved = out;
  return tp->Emit(
      std::move(out), tp->requires_grad(a),
      [a, saved = std::move(saved)](Tape* tape, const Matrix& g) {
        // dx = y ⊙ (g − rowsum(g ⊙ y)).
        Matrix gy = t::Hadamard(g, saved);
        Matrix row_sums = t::RowSums(gy);
        Matrix dx(g.rows(), g.cols());
        const int64_t cols = g.cols();
        par::For(g.rows(), [&](int64_t row_lo, int64_t row_hi) {
          for (int64_t r = row_lo; r < row_hi; ++r) {
            const float rs = row_sums(r, 0);
            const float* pg = g.row(r);
            const float* py = saved.row(r);
            float* pd = dx.row(r);
            for (int64_t c = 0; c < cols; ++c) {
              pd[c] = py[c] * (pg[c] - rs);
            }
          }
        }, RowGrain(cols));
        tape->AccumulateGrad(a, std::move(dx));
      },
      "bw.softmax_rows");
}

Var LogSoftmaxRows(Var a) {
  Tape* tp = TapeOf(a);
  Matrix out = t::LogSoftmaxRows(tp->value(a));
  Matrix softmax = t::Exp(out);
  return tp->Emit(
      std::move(out), tp->requires_grad(a),
      [a, softmax = std::move(softmax)](Tape* tape, const Matrix& g) {
        // dx = g − softmax ⊙ broadcast(rowsum(g)).
        Matrix row_sums = t::RowSums(g);
        Matrix dx(g.rows(), g.cols());
        const int64_t cols = g.cols();
        par::For(g.rows(), [&](int64_t row_lo, int64_t row_hi) {
          for (int64_t r = row_lo; r < row_hi; ++r) {
            const float rs = row_sums(r, 0);
            const float* pg = g.row(r);
            const float* ps = softmax.row(r);
            float* pd = dx.row(r);
            for (int64_t c = 0; c < cols; ++c) {
              pd[c] = pg[c] - ps[c] * rs;
            }
          }
        }, RowGrain(cols));
        tape->AccumulateGrad(a, std::move(dx));
      },
      "bw.log_softmax_rows");
}

}  // namespace layergcn::ag
