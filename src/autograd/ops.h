// Differentiable operations over Tape variables.
//
// Each op computes its value eagerly with the tensor:: kernels and records a
// backward closure on the tape. Ops whose backward pass needs an *input*
// value capture the input Var and read it back from the tape (values persist
// for the tape's lifetime — no copy); ops whose backward needs their *output*
// (sigmoid, tanh, softmax) capture a copy of the output.
//
// Gradient correctness for every op is verified against central differences
// in tests/autograd_gradcheck_test.cpp.

#ifndef LAYERGCN_AUTOGRAD_OPS_H_
#define LAYERGCN_AUTOGRAD_OPS_H_

#include <vector>

#include "autograd/tape.h"
#include "sparse/csr_matrix.h"

namespace layergcn::ag {

// --- Elementwise arithmetic ---

/// a + b (same shape).
Var Add(Var a, Var b);
/// a - b (same shape).
Var Sub(Var a, Var b);
/// alpha * a.
Var Scale(Var a, float alpha);
/// a + c (entrywise).
Var AddScalar(Var a, float c);
/// -a.
Var Negate(Var a);
/// a ⊙ b (same shape).
Var Hadamard(Var a, Var b);

// --- Linear algebra ---

/// op(a) * op(b) with optional transposes.
Var MatMul(Var a, Var b, bool trans_a = false, bool trans_b = false);

/// aᵀ.
Var Transpose(Var a);

/// m * x where `m` is a constant sparse matrix. `m_transpose` is used by the
/// backward pass (dX = mᵀ·G); both pointers must outlive the tape.
Var SpMM(const sparse::CsrMatrix* m, const sparse::CsrMatrix* m_transpose,
         Var x);

/// SpMM for symmetric m (the normalized bipartite adjacency Â): backward
/// reuses `m` itself.
Var SpMMSymmetric(const sparse::CsrMatrix* m, Var x);

// --- Row-structured ops ---

/// Gathers rows of x (embedding lookup). Backward scatter-adds.
Var GatherRows(Var x, std::vector<int32_t> rows);

/// Multiplies row r of x by s(r, 0); s must be Nx1. This is the layer
/// refinement application X^{l+1} = (a + ε) ⊙_rows H of paper Eq. 6.
Var ScaleRows(Var x, Var s);

/// Nx1 of row dot products <a_r, b_r> (the scoring op, paper Eq. 10).
Var RowDots(Var a, Var b);

/// Nx1 of row cosine similarities with eps-guarded denominator (paper
/// Eq. 8).
Var RowwiseCosine(Var a, Var b, float eps);

/// x + broadcast 1xC bias row.
Var AddRowVector(Var x, Var bias);

/// Row-wise L2 normalization y_r = x_r / max(‖x_r‖, eps) (used by NGCF
/// layer outputs and by contrastive objectives).
Var NormalizeRows(Var x, float eps = 1e-12f);

// --- Activations ---

Var Sigmoid(Var a);
Var Tanh(Var a);
Var Relu(Var a);
Var LeakyRelu(Var a, float slope);
/// Numerically stable log(1 + exp(a)); softplus(-x) is the BPR building
/// block: -log σ(x) = softplus(-x).
Var Softplus(Var a);
Var Exp(Var a);
/// Natural log (positive inputs).
Var Log(Var a);
Var Square(Var a);

/// Inverted-dropout application: y = x ⊙ mask where the caller built `mask`
/// with entries 0 or 1/(1-p). The mask is treated as a constant.
Var Dropout(Var x, const Matrix& mask);

// --- Reductions ---

/// Sum of all entries (1x1).
Var Sum(Var a);
/// Mean of all entries (1x1).
Var Mean(Var a);
/// Squared Frobenius norm (1x1) — the L2 penalty ‖X⁰‖² of paper Eq. 12.
Var SumSquares(Var a);

// --- Aggregation ---

/// Elementwise sum of xs (the sum Readout of paper Eq. 9). Requires >= 1
/// input, all same shape.
Var AddN(const std::vector<Var>& xs);

/// Σ_k w(k,0) * xs[k] with learnable Kx1 weights (used by the LightGCN
/// learnable-layer-weight variant behind paper Fig. 1).
Var LinComb(const std::vector<Var>& xs, Var w);

/// Horizontal concatenation (the LR-GCCF / NGCF readout).
Var ConcatCols(const std::vector<Var>& xs);

// --- Row-wise softmax ---

Var SoftmaxRows(Var a);
Var LogSoftmaxRows(Var a);

}  // namespace layergcn::ag

#endif  // LAYERGCN_AUTOGRAD_OPS_H_
