// Cache- and register-blocked GEMM kernels.
//
// The hot paths of the library are dense score computation (user_emb ·
// item_embᵀ during all-ranking evaluation) and the dense matmuls inside the
// autograd tape. Both route through the blocked kernel here instead of the
// naive triple loop: the inner dimension is walked with the depth (k) loop
// outermost inside a register tile, so every operand access is unit-stride
// and the 4x16 accumulator tile stays in vector registers — FMA-friendly
// and auto-vectorizable without -ffast-math.
//
// Numerical contract: each output element accumulates its k products in
// ascending-k order in float, exactly like the scalar reference
//
//   for (p = 0; p < k; ++p) acc += a[p] * b[p];
//
// so the blocked kernel is bit-identical to that reference (vectorization
// across *different* output elements never reorders the sum of any single
// element). The fused evaluation kernel (eval/fused_rank.h) relies on this
// to produce the same rankings as the materialize-then-rank path.
//
// Parallelism uses util::ThreadPool (row-range partitioning), so it no
// longer silently depends on OpenMP being linked; `#pragma omp simd` hints
// remain on the innermost loops and degrade gracefully to compiler
// auto-vectorization when OpenMP is absent.

#ifndef LAYERGCN_TENSOR_GEMM_H_
#define LAYERGCN_TENSOR_GEMM_H_

#include <cstdint>

#include "tensor/matrix.h"

namespace layergcn::tensor {

/// Register tile sizes of the micro-kernel (rows x cols of the output
/// tile held in accumulators). Exposed so the fused ranking kernel can pick
/// item-tile sizes that are multiples of kGemmTileN.
inline constexpr int64_t kGemmTileM = 4;
inline constexpr int64_t kGemmTileN = 16;

/// Computes c[r][j] += sum_p a_rows[r][p] * b.row(p)[j0 + j] for
/// r in [0, m) and j in [0, n), where `c` is row-major with leading
/// dimension `ldc` and each a_rows[r] points at a depth-`k` row.
///
/// `b` must be a (k x >= j0+n) row-major matrix — i.e. the *already
/// transposed* right operand, so the j loop is unit-stride. `c` is
/// accumulated into (callers zero it first when they want `=`).
///
/// Serial; callers partition work across rows of `c`.
void GemmMicroPanel(const float* const* a_rows, int64_t m, int64_t k,
                    const Matrix& b, int64_t j0, int64_t n, float* c,
                    int64_t ldc);

/// Blocked GEMM: returns op(a) · op(b) with op = transpose when the flag is
/// set. Bit-identical to the ascending-k scalar float reference for every
/// element. Parallel over output rows via util::ThreadPool when the
/// problem is large enough.
Matrix GemmBlocked(const Matrix& a, const Matrix& b, bool trans_a,
                   bool trans_b);

}  // namespace layergcn::tensor

#endif  // LAYERGCN_TENSOR_GEMM_H_
