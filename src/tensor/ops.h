// Dense kernels over tensor::Matrix.
//
// These are the non-differentiable building blocks; the autograd layer
// composes them into differentiable ops. All kernels check shapes with
// LAYERGCN_CHECK and accumulate reductions in double for numerical
// stability. Kernels never touch RNG state, so they are safe to
// parallelize (thread pool / OpenMP) without affecting reproducibility.
// MatMul routes through the blocked kernel in tensor/gemm.h.

#ifndef LAYERGCN_TENSOR_OPS_H_
#define LAYERGCN_TENSOR_OPS_H_

#include <cstdint>
#include <vector>

#include "tensor/matrix.h"

namespace layergcn::tensor {

// ---------------------------------------------------------------------------
// Elementwise arithmetic.
// ---------------------------------------------------------------------------

/// Returns a + b. Shapes must match.
Matrix Add(const Matrix& a, const Matrix& b);

/// Returns a - b. Shapes must match.
Matrix Sub(const Matrix& a, const Matrix& b);

/// dst += src. Shapes must match.
void AddInPlace(Matrix* dst, const Matrix& src);

/// dst += alpha * src. Shapes must match.
void AxpyInPlace(Matrix* dst, float alpha, const Matrix& src);

/// Returns alpha * a.
Matrix Scale(const Matrix& a, float alpha);

/// dst *= alpha.
void ScaleInPlace(Matrix* dst, float alpha);

/// Returns a ⊙ b (elementwise product). Shapes must match.
Matrix Hadamard(const Matrix& a, const Matrix& b);

/// dst ⊙= src.
void HadamardInPlace(Matrix* dst, const Matrix& src);

/// Returns a + c applied to every entry.
Matrix AddScalar(const Matrix& a, float c);

// ---------------------------------------------------------------------------
// GEMM and transpose.
// ---------------------------------------------------------------------------

/// Returns op(a) * op(b) where op is transpose when the corresponding flag
/// is set. Inner dimensions must agree.
Matrix MatMul(const Matrix& a, const Matrix& b, bool trans_a = false,
              bool trans_b = false);

/// Returns aᵀ.
Matrix Transpose(const Matrix& a);

// ---------------------------------------------------------------------------
// Row gathering / scattering (embedding lookups).
// ---------------------------------------------------------------------------

/// Returns the |rows| x cols matrix whose i-th row is a.row(rows[i]).
Matrix GatherRows(const Matrix& a, const std::vector<int32_t>& rows);

/// dst.row(rows[i]) += src.row(i) for every i. Duplicate indices accumulate.
void ScatterAddRows(Matrix* dst, const std::vector<int32_t>& rows,
                    const Matrix& src);

// ---------------------------------------------------------------------------
// Row-wise operations (N x C with an N x 1 companion).
// ---------------------------------------------------------------------------

/// Returns X with row r multiplied by s(r, 0). `s` must be N x 1.
Matrix ScaleRows(const Matrix& x, const Matrix& s);

/// Returns the N x 1 matrix of row dot products: out(r,0) = <a.row(r),
/// b.row(r)>. Shapes must match.
Matrix RowDots(const Matrix& a, const Matrix& b);

/// Returns the N x 1 matrix of row L2 norms.
Matrix RowL2Norms(const Matrix& a);

/// Returns the N x 1 matrix of row-wise cosine similarities between a and b,
/// guarding the denominator with max(·, eps) exactly as paper Eq. 8.
Matrix RowwiseCosine(const Matrix& a, const Matrix& b, float eps);

/// Returns X with each row L2-normalized; zero rows stay zero (guarded by
/// eps in the denominator).
Matrix NormalizeRowsL2(const Matrix& x, float eps = 1e-12f);

/// Returns the N x 1 row sums.
Matrix RowSums(const Matrix& a);

/// Returns the 1 x C column sums.
Matrix ColSums(const Matrix& a);

/// Returns X + broadcast of the 1 x C row vector b to every row.
Matrix AddRowVector(const Matrix& x, const Matrix& b);

// ---------------------------------------------------------------------------
// Activations / maps.
// ---------------------------------------------------------------------------

Matrix Sigmoid(const Matrix& a);
Matrix Tanh(const Matrix& a);
Matrix Relu(const Matrix& a);
Matrix LeakyRelu(const Matrix& a, float slope);
/// Numerically stable log(1 + exp(a)).
Matrix Softplus(const Matrix& a);
Matrix Exp(const Matrix& a);
/// Natural log; inputs must be positive.
Matrix Log(const Matrix& a);
Matrix Sqrt(const Matrix& a);
Matrix Square(const Matrix& a);
Matrix Negate(const Matrix& a);

/// Row-wise softmax (stable: subtracts the row max).
Matrix SoftmaxRows(const Matrix& a);

/// Row-wise log-softmax (stable).
Matrix LogSoftmaxRows(const Matrix& a);

// ---------------------------------------------------------------------------
// Reductions (double accumulation).
// ---------------------------------------------------------------------------

/// Sum of all entries.
double SumAll(const Matrix& a);

/// Sum of squared entries (= squared Frobenius norm).
double SumSquares(const Matrix& a);

/// Mean of all entries. Requires non-empty.
double MeanAll(const Matrix& a);

/// Max of all entries. Requires non-empty.
float MaxAll(const Matrix& a);

// ---------------------------------------------------------------------------
// Concatenation / slicing.
// ---------------------------------------------------------------------------

/// Horizontally concatenates matrices with equal row counts.
Matrix ConcatCols(const std::vector<const Matrix*>& parts);

/// Returns columns [begin, end) of a.
Matrix SliceCols(const Matrix& a, int64_t begin, int64_t end);

}  // namespace layergcn::tensor

#endif  // LAYERGCN_TENSOR_OPS_H_
