#include "tensor/ops.h"

#include <algorithm>
#include <cmath>

#include "tensor/gemm.h"
#include "util/parallel.h"

namespace layergcn::tensor {
namespace {

namespace par = layergcn::util::parallel;

void CheckSameShape(const Matrix& a, const Matrix& b, const char* op) {
  LAYERGCN_CHECK(a.rows() == b.rows() && a.cols() == b.cols())
      << op << ": shape mismatch " << a.rows() << "x" << a.cols() << " vs "
      << b.rows() << "x" << b.cols();
}

// Block size for kernels that iterate over rows: scaled so one block is
// roughly kDefaultGrain scalar elements regardless of the row width. Fixed
// for a given shape, so the blocked partition stays worker-count-free.
int64_t RowGrain(int64_t cols) {
  return std::max<int64_t>(1, par::kDefaultGrain / std::max<int64_t>(cols, 1));
}

// Elementwise map over the flat buffer, parallel over fixed blocks. Each
// output element is written by exactly one block, so the result is
// bit-exact for any worker count.
template <typename Fn>
Matrix Map(const Matrix& a, Fn fn) {
  Matrix out(a.rows(), a.cols());
  const float* src = a.data();
  float* dst = out.data();
  par::For(a.size(), [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) dst[i] = fn(src[i]);
  });
  return out;
}

// Elementwise zip of two same-shape operands.
template <typename Fn>
Matrix Zip(const Matrix& a, const Matrix& b, Fn fn) {
  Matrix out(a.rows(), a.cols());
  const float* pa = a.data();
  const float* pb = b.data();
  float* dst = out.data();
  par::For(a.size(), [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) dst[i] = fn(pa[i], pb[i]);
  });
  return out;
}

}  // namespace

Matrix Add(const Matrix& a, const Matrix& b) {
  CheckSameShape(a, b, "Add");
  return Zip(a, b, [](float x, float y) { return x + y; });
}

Matrix Sub(const Matrix& a, const Matrix& b) {
  CheckSameShape(a, b, "Sub");
  return Zip(a, b, [](float x, float y) { return x - y; });
}

void AddInPlace(Matrix* dst, const Matrix& src) {
  CheckSameShape(*dst, src, "AddInPlace");
  float* d = dst->data();
  const float* s = src.data();
  par::For(dst->size(), [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) d[i] += s[i];
  });
}

void AxpyInPlace(Matrix* dst, float alpha, const Matrix& src) {
  CheckSameShape(*dst, src, "AxpyInPlace");
  float* d = dst->data();
  const float* s = src.data();
  par::For(dst->size(), [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) d[i] += alpha * s[i];
  });
}

Matrix Scale(const Matrix& a, float alpha) {
  return Map(a, [alpha](float v) { return alpha * v; });
}

void ScaleInPlace(Matrix* dst, float alpha) {
  float* d = dst->data();
  par::For(dst->size(), [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) d[i] *= alpha;
  });
}

Matrix Hadamard(const Matrix& a, const Matrix& b) {
  CheckSameShape(a, b, "Hadamard");
  return Zip(a, b, [](float x, float y) { return x * y; });
}

void HadamardInPlace(Matrix* dst, const Matrix& src) {
  CheckSameShape(*dst, src, "HadamardInPlace");
  float* d = dst->data();
  const float* s = src.data();
  par::For(dst->size(), [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) d[i] *= s[i];
  });
}

Matrix AddScalar(const Matrix& a, float c) {
  return Map(a, [c](float v) { return v + c; });
}

Matrix MatMul(const Matrix& a, const Matrix& b, bool trans_a, bool trans_b) {
  // All four transpose layouts route through the blocked register-tiled
  // kernel, which parallelizes over output rows on the shared thread pool
  // (the old triple loop ran the trans_a layouts serial and depended on
  // OpenMP for the rest).
  return GemmBlocked(a, b, trans_a, trans_b);
}

Matrix Transpose(const Matrix& a) {
  Matrix out(a.cols(), a.rows());
  for (int64_t r = 0; r < a.rows(); ++r) {
    const float* src = a.row(r);
    for (int64_t c = 0; c < a.cols(); ++c) out(c, r) = src[c];
  }
  return out;
}

Matrix GatherRows(const Matrix& a, const std::vector<int32_t>& rows) {
  Matrix out(static_cast<int64_t>(rows.size()), a.cols());
  const int64_t cols = a.cols();
  par::For(
      static_cast<int64_t>(rows.size()),
      [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
          const int64_t r = rows[static_cast<size_t>(i)];
          LAYERGCN_CHECK(r >= 0 && r < a.rows()) << "GatherRows: row " << r;
          std::copy(a.row(r), a.row(r) + cols, out.row(i));
        }
      },
      RowGrain(cols));
  return out;
}

void ScatterAddRows(Matrix* dst, const std::vector<int32_t>& rows,
                    const Matrix& src) {
  LAYERGCN_CHECK_EQ(static_cast<int64_t>(rows.size()), src.rows());
  LAYERGCN_CHECK_EQ(dst->cols(), src.cols());
  const int64_t cols = src.cols();
  for (int32_t r : rows) {
    LAYERGCN_CHECK(r >= 0 && r < dst->rows()) << "ScatterAddRows: row " << r;
  }
  auto apply_range = [&](int64_t row_lo, int64_t row_hi) {
    // Only entries landing in [row_lo, row_hi) are applied; per destination
    // row the accumulation therefore runs in ascending index order — the
    // same order as the serial loop — for any sharding.
    for (size_t i = 0; i < rows.size(); ++i) {
      const int64_t r = rows[i];
      if (r < row_lo || r >= row_hi) continue;
      float* d = dst->row(r);
      const float* s = src.row(static_cast<int64_t>(i));
      for (int64_t c = 0; c < cols; ++c) d[c] += s[c];
    }
  };

  // Row-sharded scatter: destination rows are split into one contiguous
  // shard per worker, so duplicate indices never race, no atomics are
  // needed, and the float accumulation order per row is fixed. Shard
  // boundaries affect scheduling only, never results, so they may depend on
  // the pool width. Each shard rescans the index list (O(shards x batch)
  // int compares), which is noise next to the row payload traffic.
  util::ThreadPool* pool = par::ComputePool();
  const int64_t shards = std::min<int64_t>(pool->num_threads(), dst->rows());
  if (shards <= 1 || util::InPoolWorker() ||
      src.size() < par::kDefaultGrain) {
    apply_range(0, dst->rows());
    return;
  }
  const int64_t span = (dst->rows() + shards - 1) / shards;
  util::ParallelFor(pool, 0, shards, [&](int64_t s) {
    apply_range(s * span, std::min<int64_t>(dst->rows(), (s + 1) * span));
  });
}

Matrix ScaleRows(const Matrix& x, const Matrix& s) {
  LAYERGCN_CHECK(s.rows() == x.rows() && s.cols() == 1)
      << "ScaleRows: scale must be Nx1";
  Matrix out(x.rows(), x.cols());
  const int64_t cols = x.cols();
  par::For(
      x.rows(),
      [&](int64_t lo, int64_t hi) {
        for (int64_t r = lo; r < hi; ++r) {
          const float f = s(r, 0);
          const float* src = x.row(r);
          float* dst = out.row(r);
          for (int64_t c = 0; c < cols; ++c) dst[c] = f * src[c];
        }
      },
      RowGrain(cols));
  return out;
}

Matrix RowDots(const Matrix& a, const Matrix& b) {
  CheckSameShape(a, b, "RowDots");
  Matrix out(a.rows(), 1);
  const int64_t cols = a.cols();
  par::For(
      a.rows(),
      [&](int64_t lo, int64_t hi) {
        for (int64_t r = lo; r < hi; ++r) {
          const float* pa = a.row(r);
          const float* pb = b.row(r);
          double acc = 0.0;
          for (int64_t c = 0; c < cols; ++c) acc += pa[c] * pb[c];
          out(r, 0) = static_cast<float>(acc);
        }
      },
      RowGrain(cols));
  return out;
}

Matrix RowL2Norms(const Matrix& a) {
  Matrix out(a.rows(), 1);
  const int64_t cols = a.cols();
  par::For(
      a.rows(),
      [&](int64_t lo, int64_t hi) {
        for (int64_t r = lo; r < hi; ++r) {
          const float* p = a.row(r);
          double acc = 0.0;
          for (int64_t c = 0; c < cols; ++c) acc += p[c] * p[c];
          out(r, 0) = static_cast<float>(std::sqrt(acc));
        }
      },
      RowGrain(cols));
  return out;
}

Matrix RowwiseCosine(const Matrix& a, const Matrix& b, float eps) {
  CheckSameShape(a, b, "RowwiseCosine");
  Matrix out(a.rows(), 1);
  const int64_t cols = a.cols();
  par::For(
      a.rows(),
      [&](int64_t lo, int64_t hi) {
        for (int64_t r = lo; r < hi; ++r) {
          const float* pa = a.row(r);
          const float* pb = b.row(r);
          double dot = 0.0, na = 0.0, nb = 0.0;
          for (int64_t c = 0; c < cols; ++c) {
            dot += pa[c] * pb[c];
            na += pa[c] * pa[c];
            nb += pb[c] * pb[c];
          }
          const double denom =
              std::max(std::sqrt(na) * std::sqrt(nb),
                       static_cast<double>(eps));
          out(r, 0) = static_cast<float>(dot / denom);
        }
      },
      RowGrain(cols));
  return out;
}

Matrix NormalizeRowsL2(const Matrix& x, float eps) {
  Matrix out(x.rows(), x.cols());
  const int64_t cols = x.cols();
  par::For(
      x.rows(),
      [&](int64_t lo, int64_t hi) {
        for (int64_t r = lo; r < hi; ++r) {
          const float* src = x.row(r);
          double acc = 0.0;
          for (int64_t c = 0; c < cols; ++c) acc += src[c] * src[c];
          const float inv = static_cast<float>(
              1.0 / std::max(std::sqrt(acc), static_cast<double>(eps)));
          float* dst = out.row(r);
          for (int64_t c = 0; c < cols; ++c) dst[c] = src[c] * inv;
        }
      },
      RowGrain(cols));
  return out;
}

Matrix RowSums(const Matrix& a) {
  Matrix out(a.rows(), 1);
  const int64_t cols = a.cols();
  par::For(
      a.rows(),
      [&](int64_t lo, int64_t hi) {
        for (int64_t r = lo; r < hi; ++r) {
          const float* p = a.row(r);
          double acc = 0.0;
          for (int64_t c = 0; c < cols; ++c) acc += p[c];
          out(r, 0) = static_cast<float>(acc);
        }
      },
      RowGrain(cols));
  return out;
}

Matrix ColSums(const Matrix& a) {
  Matrix out(1, a.cols());
  std::vector<double> acc(static_cast<size_t>(a.cols()), 0.0);
  for (int64_t r = 0; r < a.rows(); ++r) {
    const float* p = a.row(r);
    for (int64_t c = 0; c < a.cols(); ++c) acc[static_cast<size_t>(c)] += p[c];
  }
  for (int64_t c = 0; c < a.cols(); ++c) {
    out(0, c) = static_cast<float>(acc[static_cast<size_t>(c)]);
  }
  return out;
}

Matrix AddRowVector(const Matrix& x, const Matrix& b) {
  LAYERGCN_CHECK(b.rows() == 1 && b.cols() == x.cols())
      << "AddRowVector: bias must be 1x" << x.cols();
  Matrix out(x.rows(), x.cols());
  const int64_t cols = x.cols();
  const float* bias = b.data();
  par::For(
      x.rows(),
      [&](int64_t lo, int64_t hi) {
        for (int64_t r = lo; r < hi; ++r) {
          const float* src = x.row(r);
          float* dst = out.row(r);
          for (int64_t c = 0; c < cols; ++c) dst[c] = src[c] + bias[c];
        }
      },
      RowGrain(cols));
  return out;
}

Matrix Sigmoid(const Matrix& a) {
  return Map(a, [](float v) {
    // Stable in both tails.
    if (v >= 0.f) {
      const float z = std::exp(-v);
      return 1.f / (1.f + z);
    }
    const float z = std::exp(v);
    return z / (1.f + z);
  });
}

Matrix Tanh(const Matrix& a) {
  return Map(a, [](float v) { return std::tanh(v); });
}

Matrix Relu(const Matrix& a) {
  return Map(a, [](float v) { return v > 0.f ? v : 0.f; });
}

Matrix LeakyRelu(const Matrix& a, float slope) {
  return Map(a, [slope](float v) { return v > 0.f ? v : slope * v; });
}

Matrix Softplus(const Matrix& a) {
  return Map(a, [](float v) {
    // log(1 + e^v) = max(v, 0) + log1p(e^{-|v|}).
    return std::max(v, 0.f) + std::log1p(std::exp(-std::fabs(v)));
  });
}

Matrix Exp(const Matrix& a) {
  return Map(a, [](float v) { return std::exp(v); });
}

Matrix Log(const Matrix& a) {
  return Map(a, [](float v) { return std::log(v); });
}

Matrix Sqrt(const Matrix& a) {
  return Map(a, [](float v) { return std::sqrt(v); });
}

Matrix Square(const Matrix& a) {
  return Map(a, [](float v) { return v * v; });
}

Matrix Negate(const Matrix& a) {
  return Map(a, [](float v) { return -v; });
}

Matrix SoftmaxRows(const Matrix& a) {
  Matrix out(a.rows(), a.cols());
  const int64_t cols = a.cols();
  par::For(
      a.rows(),
      [&](int64_t lo, int64_t hi) {
        for (int64_t r = lo; r < hi; ++r) {
          const float* src = a.row(r);
          float* dst = out.row(r);
          float mx = src[0];
          for (int64_t c = 1; c < cols; ++c) mx = std::max(mx, src[c]);
          double sum = 0.0;
          for (int64_t c = 0; c < cols; ++c) {
            dst[c] = std::exp(src[c] - mx);
            sum += dst[c];
          }
          const float inv = static_cast<float>(1.0 / sum);
          for (int64_t c = 0; c < cols; ++c) dst[c] *= inv;
        }
      },
      RowGrain(cols));
  return out;
}

Matrix LogSoftmaxRows(const Matrix& a) {
  Matrix out(a.rows(), a.cols());
  const int64_t cols = a.cols();
  par::For(
      a.rows(),
      [&](int64_t lo, int64_t hi) {
        for (int64_t r = lo; r < hi; ++r) {
          const float* src = a.row(r);
          float* dst = out.row(r);
          float mx = src[0];
          for (int64_t c = 1; c < cols; ++c) mx = std::max(mx, src[c]);
          double sum = 0.0;
          for (int64_t c = 0; c < cols; ++c) sum += std::exp(src[c] - mx);
          const float lse = mx + static_cast<float>(std::log(sum));
          for (int64_t c = 0; c < cols; ++c) dst[c] = src[c] - lse;
        }
      },
      RowGrain(cols));
  return out;
}

double SumAll(const Matrix& a) {
  const float* p = a.data();
  return util::parallel::Reduce(a.size(), [&](int64_t lo, int64_t hi) {
    double acc = 0.0;
    for (int64_t i = lo; i < hi; ++i) acc += p[i];
    return acc;
  });
}

double SumSquares(const Matrix& a) {
  const float* p = a.data();
  return util::parallel::Reduce(a.size(), [&](int64_t lo, int64_t hi) {
    double acc = 0.0;
    for (int64_t i = lo; i < hi; ++i) {
      acc += static_cast<double>(p[i]) * p[i];
    }
    return acc;
  });
}

double MeanAll(const Matrix& a) {
  LAYERGCN_CHECK_GT(a.size(), 0);
  return SumAll(a) / static_cast<double>(a.size());
}

float MaxAll(const Matrix& a) {
  LAYERGCN_CHECK_GT(a.size(), 0);
  float mx = a.data()[0];
  for (int64_t i = 1; i < a.size(); ++i) mx = std::max(mx, a.data()[i]);
  return mx;
}

Matrix ConcatCols(const std::vector<const Matrix*>& parts) {
  LAYERGCN_CHECK(!parts.empty());
  const int64_t rows = parts[0]->rows();
  int64_t cols = 0;
  for (const Matrix* p : parts) {
    LAYERGCN_CHECK_EQ(p->rows(), rows) << "ConcatCols: row mismatch";
    cols += p->cols();
  }
  Matrix out(rows, cols);
  par::For(
      rows,
      [&](int64_t lo, int64_t hi) {
        for (int64_t r = lo; r < hi; ++r) {
          float* dst = out.row(r);
          for (const Matrix* p : parts) {
            const float* src = p->row(r);
            std::copy(src, src + p->cols(), dst);
            dst += p->cols();
          }
        }
      },
      RowGrain(cols));
  return out;
}

Matrix SliceCols(const Matrix& a, int64_t begin, int64_t end) {
  LAYERGCN_CHECK(begin >= 0 && begin <= end && end <= a.cols())
      << "SliceCols: bad range [" << begin << "," << end << ")";
  Matrix out(a.rows(), end - begin);
  const int64_t width = end - begin;
  par::For(
      a.rows(),
      [&](int64_t lo, int64_t hi) {
        for (int64_t r = lo; r < hi; ++r) {
          const float* src = a.row(r) + begin;
          std::copy(src, src + width, out.row(r));
        }
      },
      RowGrain(width));
  return out;
}

}  // namespace layergcn::tensor
