#include "tensor/ops.h"

#include <algorithm>
#include <cmath>

#include "tensor/gemm.h"

namespace layergcn::tensor {
namespace {

void CheckSameShape(const Matrix& a, const Matrix& b, const char* op) {
  LAYERGCN_CHECK(a.rows() == b.rows() && a.cols() == b.cols())
      << op << ": shape mismatch " << a.rows() << "x" << a.cols() << " vs "
      << b.rows() << "x" << b.cols();
}

template <typename Fn>
Matrix Map(const Matrix& a, Fn fn) {
  Matrix out(a.rows(), a.cols());
  const float* src = a.data();
  float* dst = out.data();
  const int64_t n = a.size();
  for (int64_t i = 0; i < n; ++i) dst[i] = fn(src[i]);
  return out;
}

}  // namespace

Matrix Add(const Matrix& a, const Matrix& b) {
  CheckSameShape(a, b, "Add");
  Matrix out(a.rows(), a.cols());
  const int64_t n = a.size();
  for (int64_t i = 0; i < n; ++i) out.data()[i] = a.data()[i] + b.data()[i];
  return out;
}

Matrix Sub(const Matrix& a, const Matrix& b) {
  CheckSameShape(a, b, "Sub");
  Matrix out(a.rows(), a.cols());
  const int64_t n = a.size();
  for (int64_t i = 0; i < n; ++i) out.data()[i] = a.data()[i] - b.data()[i];
  return out;
}

void AddInPlace(Matrix* dst, const Matrix& src) {
  CheckSameShape(*dst, src, "AddInPlace");
  const int64_t n = dst->size();
  for (int64_t i = 0; i < n; ++i) dst->data()[i] += src.data()[i];
}

void AxpyInPlace(Matrix* dst, float alpha, const Matrix& src) {
  CheckSameShape(*dst, src, "AxpyInPlace");
  const int64_t n = dst->size();
  for (int64_t i = 0; i < n; ++i) dst->data()[i] += alpha * src.data()[i];
}

Matrix Scale(const Matrix& a, float alpha) {
  return Map(a, [alpha](float v) { return alpha * v; });
}

void ScaleInPlace(Matrix* dst, float alpha) {
  const int64_t n = dst->size();
  for (int64_t i = 0; i < n; ++i) dst->data()[i] *= alpha;
}

Matrix Hadamard(const Matrix& a, const Matrix& b) {
  CheckSameShape(a, b, "Hadamard");
  Matrix out(a.rows(), a.cols());
  const int64_t n = a.size();
  for (int64_t i = 0; i < n; ++i) out.data()[i] = a.data()[i] * b.data()[i];
  return out;
}

void HadamardInPlace(Matrix* dst, const Matrix& src) {
  CheckSameShape(*dst, src, "HadamardInPlace");
  const int64_t n = dst->size();
  for (int64_t i = 0; i < n; ++i) dst->data()[i] *= src.data()[i];
}

Matrix AddScalar(const Matrix& a, float c) {
  return Map(a, [c](float v) { return v + c; });
}

Matrix MatMul(const Matrix& a, const Matrix& b, bool trans_a, bool trans_b) {
  // All four transpose layouts route through the blocked register-tiled
  // kernel, which parallelizes over output rows on the shared thread pool
  // (the old triple loop ran the trans_a layouts serial and depended on
  // OpenMP for the rest).
  return GemmBlocked(a, b, trans_a, trans_b);
}

Matrix Transpose(const Matrix& a) {
  Matrix out(a.cols(), a.rows());
  for (int64_t r = 0; r < a.rows(); ++r) {
    const float* src = a.row(r);
    for (int64_t c = 0; c < a.cols(); ++c) out(c, r) = src[c];
  }
  return out;
}

Matrix GatherRows(const Matrix& a, const std::vector<int32_t>& rows) {
  Matrix out(static_cast<int64_t>(rows.size()), a.cols());
  for (size_t i = 0; i < rows.size(); ++i) {
    const int64_t r = rows[i];
    LAYERGCN_CHECK(r >= 0 && r < a.rows()) << "GatherRows: row " << r;
    std::copy(a.row(r), a.row(r) + a.cols(), out.row(static_cast<int64_t>(i)));
  }
  return out;
}

void ScatterAddRows(Matrix* dst, const std::vector<int32_t>& rows,
                    const Matrix& src) {
  LAYERGCN_CHECK_EQ(static_cast<int64_t>(rows.size()), src.rows());
  LAYERGCN_CHECK_EQ(dst->cols(), src.cols());
  for (size_t i = 0; i < rows.size(); ++i) {
    const int64_t r = rows[i];
    LAYERGCN_CHECK(r >= 0 && r < dst->rows()) << "ScatterAddRows: row " << r;
    float* d = dst->row(r);
    const float* s = src.row(static_cast<int64_t>(i));
    for (int64_t c = 0; c < src.cols(); ++c) d[c] += s[c];
  }
}

Matrix ScaleRows(const Matrix& x, const Matrix& s) {
  LAYERGCN_CHECK(s.rows() == x.rows() && s.cols() == 1)
      << "ScaleRows: scale must be Nx1";
  Matrix out(x.rows(), x.cols());
  for (int64_t r = 0; r < x.rows(); ++r) {
    const float f = s(r, 0);
    const float* src = x.row(r);
    float* dst = out.row(r);
    for (int64_t c = 0; c < x.cols(); ++c) dst[c] = f * src[c];
  }
  return out;
}

Matrix RowDots(const Matrix& a, const Matrix& b) {
  CheckSameShape(a, b, "RowDots");
  Matrix out(a.rows(), 1);
  for (int64_t r = 0; r < a.rows(); ++r) {
    const float* pa = a.row(r);
    const float* pb = b.row(r);
    double acc = 0.0;
    for (int64_t c = 0; c < a.cols(); ++c) acc += pa[c] * pb[c];
    out(r, 0) = static_cast<float>(acc);
  }
  return out;
}

Matrix RowL2Norms(const Matrix& a) {
  Matrix out(a.rows(), 1);
  for (int64_t r = 0; r < a.rows(); ++r) {
    const float* p = a.row(r);
    double acc = 0.0;
    for (int64_t c = 0; c < a.cols(); ++c) acc += p[c] * p[c];
    out(r, 0) = static_cast<float>(std::sqrt(acc));
  }
  return out;
}

Matrix RowwiseCosine(const Matrix& a, const Matrix& b, float eps) {
  CheckSameShape(a, b, "RowwiseCosine");
  Matrix out(a.rows(), 1);
  for (int64_t r = 0; r < a.rows(); ++r) {
    const float* pa = a.row(r);
    const float* pb = b.row(r);
    double dot = 0.0, na = 0.0, nb = 0.0;
    for (int64_t c = 0; c < a.cols(); ++c) {
      dot += pa[c] * pb[c];
      na += pa[c] * pa[c];
      nb += pb[c] * pb[c];
    }
    const double denom =
        std::max(std::sqrt(na) * std::sqrt(nb), static_cast<double>(eps));
    out(r, 0) = static_cast<float>(dot / denom);
  }
  return out;
}

Matrix NormalizeRowsL2(const Matrix& x, float eps) {
  Matrix out(x.rows(), x.cols());
  for (int64_t r = 0; r < x.rows(); ++r) {
    const float* src = x.row(r);
    double acc = 0.0;
    for (int64_t c = 0; c < x.cols(); ++c) acc += src[c] * src[c];
    const float inv =
        static_cast<float>(1.0 / std::max(std::sqrt(acc),
                                          static_cast<double>(eps)));
    float* dst = out.row(r);
    for (int64_t c = 0; c < x.cols(); ++c) dst[c] = src[c] * inv;
  }
  return out;
}

Matrix RowSums(const Matrix& a) {
  Matrix out(a.rows(), 1);
  for (int64_t r = 0; r < a.rows(); ++r) {
    const float* p = a.row(r);
    double acc = 0.0;
    for (int64_t c = 0; c < a.cols(); ++c) acc += p[c];
    out(r, 0) = static_cast<float>(acc);
  }
  return out;
}

Matrix ColSums(const Matrix& a) {
  Matrix out(1, a.cols());
  std::vector<double> acc(static_cast<size_t>(a.cols()), 0.0);
  for (int64_t r = 0; r < a.rows(); ++r) {
    const float* p = a.row(r);
    for (int64_t c = 0; c < a.cols(); ++c) acc[static_cast<size_t>(c)] += p[c];
  }
  for (int64_t c = 0; c < a.cols(); ++c) {
    out(0, c) = static_cast<float>(acc[static_cast<size_t>(c)]);
  }
  return out;
}

Matrix AddRowVector(const Matrix& x, const Matrix& b) {
  LAYERGCN_CHECK(b.rows() == 1 && b.cols() == x.cols())
      << "AddRowVector: bias must be 1x" << x.cols();
  Matrix out(x.rows(), x.cols());
  const float* bias = b.data();
  for (int64_t r = 0; r < x.rows(); ++r) {
    const float* src = x.row(r);
    float* dst = out.row(r);
    for (int64_t c = 0; c < x.cols(); ++c) dst[c] = src[c] + bias[c];
  }
  return out;
}

Matrix Sigmoid(const Matrix& a) {
  return Map(a, [](float v) {
    // Stable in both tails.
    if (v >= 0.f) {
      const float z = std::exp(-v);
      return 1.f / (1.f + z);
    }
    const float z = std::exp(v);
    return z / (1.f + z);
  });
}

Matrix Tanh(const Matrix& a) {
  return Map(a, [](float v) { return std::tanh(v); });
}

Matrix Relu(const Matrix& a) {
  return Map(a, [](float v) { return v > 0.f ? v : 0.f; });
}

Matrix LeakyRelu(const Matrix& a, float slope) {
  return Map(a, [slope](float v) { return v > 0.f ? v : slope * v; });
}

Matrix Softplus(const Matrix& a) {
  return Map(a, [](float v) {
    // log(1 + e^v) = max(v, 0) + log1p(e^{-|v|}).
    return std::max(v, 0.f) + std::log1p(std::exp(-std::fabs(v)));
  });
}

Matrix Exp(const Matrix& a) {
  return Map(a, [](float v) { return std::exp(v); });
}

Matrix Log(const Matrix& a) {
  return Map(a, [](float v) { return std::log(v); });
}

Matrix Sqrt(const Matrix& a) {
  return Map(a, [](float v) { return std::sqrt(v); });
}

Matrix Square(const Matrix& a) {
  return Map(a, [](float v) { return v * v; });
}

Matrix Negate(const Matrix& a) {
  return Map(a, [](float v) { return -v; });
}

Matrix SoftmaxRows(const Matrix& a) {
  Matrix out(a.rows(), a.cols());
  for (int64_t r = 0; r < a.rows(); ++r) {
    const float* src = a.row(r);
    float* dst = out.row(r);
    float mx = src[0];
    for (int64_t c = 1; c < a.cols(); ++c) mx = std::max(mx, src[c]);
    double sum = 0.0;
    for (int64_t c = 0; c < a.cols(); ++c) {
      dst[c] = std::exp(src[c] - mx);
      sum += dst[c];
    }
    const float inv = static_cast<float>(1.0 / sum);
    for (int64_t c = 0; c < a.cols(); ++c) dst[c] *= inv;
  }
  return out;
}

Matrix LogSoftmaxRows(const Matrix& a) {
  Matrix out(a.rows(), a.cols());
  for (int64_t r = 0; r < a.rows(); ++r) {
    const float* src = a.row(r);
    float* dst = out.row(r);
    float mx = src[0];
    for (int64_t c = 1; c < a.cols(); ++c) mx = std::max(mx, src[c]);
    double sum = 0.0;
    for (int64_t c = 0; c < a.cols(); ++c) sum += std::exp(src[c] - mx);
    const float lse = mx + static_cast<float>(std::log(sum));
    for (int64_t c = 0; c < a.cols(); ++c) dst[c] = src[c] - lse;
  }
  return out;
}

double SumAll(const Matrix& a) {
  double acc = 0.0;
  const int64_t n = a.size();
  for (int64_t i = 0; i < n; ++i) acc += a.data()[i];
  return acc;
}

double SumSquares(const Matrix& a) {
  double acc = 0.0;
  const int64_t n = a.size();
  for (int64_t i = 0; i < n; ++i) {
    acc += static_cast<double>(a.data()[i]) * a.data()[i];
  }
  return acc;
}

double MeanAll(const Matrix& a) {
  LAYERGCN_CHECK_GT(a.size(), 0);
  return SumAll(a) / static_cast<double>(a.size());
}

float MaxAll(const Matrix& a) {
  LAYERGCN_CHECK_GT(a.size(), 0);
  float mx = a.data()[0];
  for (int64_t i = 1; i < a.size(); ++i) mx = std::max(mx, a.data()[i]);
  return mx;
}

Matrix ConcatCols(const std::vector<const Matrix*>& parts) {
  LAYERGCN_CHECK(!parts.empty());
  const int64_t rows = parts[0]->rows();
  int64_t cols = 0;
  for (const Matrix* p : parts) {
    LAYERGCN_CHECK_EQ(p->rows(), rows) << "ConcatCols: row mismatch";
    cols += p->cols();
  }
  Matrix out(rows, cols);
  for (int64_t r = 0; r < rows; ++r) {
    float* dst = out.row(r);
    for (const Matrix* p : parts) {
      const float* src = p->row(r);
      std::copy(src, src + p->cols(), dst);
      dst += p->cols();
    }
  }
  return out;
}

Matrix SliceCols(const Matrix& a, int64_t begin, int64_t end) {
  LAYERGCN_CHECK(begin >= 0 && begin <= end && end <= a.cols())
      << "SliceCols: bad range [" << begin << "," << end << ")";
  Matrix out(a.rows(), end - begin);
  for (int64_t r = 0; r < a.rows(); ++r) {
    const float* src = a.row(r) + begin;
    std::copy(src, src + (end - begin), out.row(r));
  }
  return out;
}

}  // namespace layergcn::tensor
