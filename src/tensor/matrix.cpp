#include "tensor/matrix.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace layergcn::tensor {

Matrix Matrix::FromRows(const std::vector<std::vector<float>>& rows) {
  if (rows.empty()) return Matrix();
  Matrix m(static_cast<int64_t>(rows.size()),
           static_cast<int64_t>(rows[0].size()));
  for (size_t r = 0; r < rows.size(); ++r) {
    LAYERGCN_CHECK_EQ(static_cast<int64_t>(rows[r].size()), m.cols())
        << "ragged initializer";
    std::copy(rows[r].begin(), rows[r].end(), m.row(static_cast<int64_t>(r)));
  }
  return m;
}

Matrix Matrix::Scalar(float v) {
  Matrix m(1, 1);
  m.data_[0] = v;
  return m;
}

void Matrix::Fill(float v) { std::fill(data_.begin(), data_.end(), v); }

void Matrix::XavierUniform(util::Rng* rng) {
  const double a = std::sqrt(6.0 / static_cast<double>(rows_ + cols_));
  UniformInit(rng, static_cast<float>(-a), static_cast<float>(a));
}

void Matrix::GaussianInit(util::Rng* rng, float stddev) {
  for (auto& v : data_) {
    v = static_cast<float>(rng->NextGaussian()) * stddev;
  }
}

void Matrix::UniformInit(util::Rng* rng, float lo, float hi) {
  for (auto& v : data_) {
    v = lo + (hi - lo) * rng->NextFloat();
  }
}

bool Matrix::Equals(const Matrix& other) const {
  return rows_ == other.rows_ && cols_ == other.cols_ && data_ == other.data_;
}

bool Matrix::AllClose(const Matrix& other, float tol) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  for (size_t i = 0; i < data_.size(); ++i) {
    if (std::fabs(data_[i] - other.data_[i]) > tol) return false;
  }
  return true;
}

std::string Matrix::ToString(int64_t max_rows, int64_t max_cols) const {
  std::ostringstream ss;
  ss << rows_ << "x" << cols_ << " [";
  const int64_t rshow = std::min(rows_, max_rows);
  for (int64_t r = 0; r < rshow; ++r) {
    ss << (r ? ", [" : "[");
    const int64_t cshow = std::min(cols_, max_cols);
    for (int64_t c = 0; c < cshow; ++c) {
      if (c) ss << ", ";
      ss << (*this)(r, c);
    }
    if (cshow < cols_) ss << ", ...";
    ss << "]";
  }
  if (rshow < rows_) ss << ", ...";
  ss << "]";
  return ss.str();
}

}  // namespace layergcn::tensor
