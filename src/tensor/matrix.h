// Dense row-major float32 matrix — the storage type for all embeddings and
// hidden states in the library.
//
// A 1xN or Nx1 Matrix doubles as a vector, and a 1x1 Matrix as a scalar
// (used for loss values). Kernels that operate on matrices live in
// tensor/ops.h; this header only defines storage, element access, and a few
// in-place fills.

#ifndef LAYERGCN_TENSOR_MATRIX_H_
#define LAYERGCN_TENSOR_MATRIX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/logging.h"
#include "util/rng.h"

namespace layergcn::tensor {

/// Dense row-major float matrix.
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() = default;

  /// rows x cols matrix, zero-initialized.
  Matrix(int64_t rows, int64_t cols)
      : rows_(rows), cols_(cols), data_(static_cast<size_t>(rows * cols), 0.f) {
    LAYERGCN_CHECK_GE(rows, 0);
    LAYERGCN_CHECK_GE(cols, 0);
  }

  /// rows x cols matrix with every entry set to `fill`.
  Matrix(int64_t rows, int64_t cols, float fill)
      : rows_(rows), cols_(cols),
        data_(static_cast<size_t>(rows * cols), fill) {}

  /// Builds from an explicit row-major initializer, e.g.
  /// Matrix::FromRows({{1, 2}, {3, 4}}).
  static Matrix FromRows(const std::vector<std::vector<float>>& rows);

  /// 1x1 matrix holding `v` (scalar wrapper).
  static Matrix Scalar(float v);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t size() const { return rows_ * cols_; }
  bool empty() const { return size() == 0; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float* row(int64_t r) { return data_.data() + r * cols_; }
  const float* row(int64_t r) const { return data_.data() + r * cols_; }

  float& at(int64_t r, int64_t c) {
    LAYERGCN_CHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_)
        << "index (" << r << "," << c << ") out of " << rows_ << "x" << cols_;
    return data_[static_cast<size_t>(r * cols_ + c)];
  }
  float at(int64_t r, int64_t c) const {
    LAYERGCN_CHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_)
        << "index (" << r << "," << c << ") out of " << rows_ << "x" << cols_;
    return data_[static_cast<size_t>(r * cols_ + c)];
  }

  /// Unchecked element access for hot loops.
  float& operator()(int64_t r, int64_t c) {
    return data_[static_cast<size_t>(r * cols_ + c)];
  }
  float operator()(int64_t r, int64_t c) const {
    return data_[static_cast<size_t>(r * cols_ + c)];
  }

  /// Value of a 1x1 matrix.
  float scalar() const {
    LAYERGCN_CHECK(rows_ == 1 && cols_ == 1) << "not a scalar";
    return data_[0];
  }

  /// Sets every entry to `v`.
  void Fill(float v);

  /// Sets every entry to 0.
  void Zero() { Fill(0.f); }

  /// Fills with U(-a, a) where a = sqrt(6 / (fan_in + fan_out)) — the Xavier
  /// uniform initializer the paper uses for embeddings (§V-A4).
  void XavierUniform(util::Rng* rng);

  /// Fills with N(0, stddev^2).
  void GaussianInit(util::Rng* rng, float stddev);

  /// Fills with U(lo, hi).
  void UniformInit(util::Rng* rng, float lo, float hi);

  /// True if shapes and all entries are exactly equal.
  bool Equals(const Matrix& other) const;

  /// True if shapes match and entries agree within `tol` absolutely.
  bool AllClose(const Matrix& other, float tol = 1e-5f) const;

  /// Debug rendering ("2x3 [[1, 2, 3], [4, 5, 6]]"), truncated for large
  /// matrices.
  std::string ToString(int64_t max_rows = 8, int64_t max_cols = 8) const;

 private:
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  std::vector<float> data_;
};

}  // namespace layergcn::tensor

#endif  // LAYERGCN_TENSOR_MATRIX_H_
