#include "tensor/gemm.h"

#include <algorithm>
#include <vector>

#include "obs/trace.h"
#include "util/thread_pool.h"

namespace layergcn::tensor {
namespace {

// L2 tile over output columns: the (k x kBlockN) panel of the transposed
// right operand is reused across every row tile while it is hot.
constexpr int64_t kBlockN = 512;

// Parallelize only when the arithmetic amortizes the pool hand-off.
constexpr int64_t kParallelFlops = 1 << 18;

// Plain out-of-place transpose (local copy to keep gemm self-contained).
Matrix CopyTranspose(const Matrix& a) {
  Matrix out(a.cols(), a.rows());
  for (int64_t r = 0; r < a.rows(); ++r) {
    const float* src = a.row(r);
    for (int64_t c = 0; c < a.cols(); ++c) out(c, r) = src[c];
  }
  return out;
}

}  // namespace

void GemmMicroPanel(const float* const* a_rows, int64_t m, int64_t k,
                    const Matrix& b, int64_t j0, int64_t n, float* c,
                    int64_t ldc) {
  const int64_t ldb = b.cols();
  const float* bbase = b.data() + j0;
  for (int64_t jb = 0; jb < n; jb += kBlockN) {
    const int64_t jbn = std::min(kBlockN, n - jb);
    for (int64_t i = 0; i < m; i += kGemmTileM) {
      const int64_t mb = std::min(kGemmTileM, m - i);
      for (int64_t j = jb; j < jb + jbn; j += kGemmTileN) {
        const int64_t nb = std::min(kGemmTileN, jb + jbn - j);
        if (mb == kGemmTileM && nb == kGemmTileN) {
          // Full 4x16 tile: accumulators live in vector registers for the
          // whole k loop; every b access is unit-stride.
          float acc[kGemmTileM][kGemmTileN];
          for (int r = 0; r < kGemmTileM; ++r) {
            const float* crow = c + (i + r) * ldc + j;
            for (int t = 0; t < kGemmTileN; ++t) acc[r][t] = crow[t];
          }
          const float* a0 = a_rows[i];
          const float* a1 = a_rows[i + 1];
          const float* a2 = a_rows[i + 2];
          const float* a3 = a_rows[i + 3];
          for (int64_t p = 0; p < k; ++p) {
            const float* brow = bbase + p * ldb + j;
            const float av0 = a0[p];
            const float av1 = a1[p];
            const float av2 = a2[p];
            const float av3 = a3[p];
#pragma omp simd
            for (int t = 0; t < kGemmTileN; ++t) {
              acc[0][t] += av0 * brow[t];
              acc[1][t] += av1 * brow[t];
              acc[2][t] += av2 * brow[t];
              acc[3][t] += av3 * brow[t];
            }
          }
          for (int r = 0; r < kGemmTileM; ++r) {
            float* crow = c + (i + r) * ldc + j;
            for (int t = 0; t < kGemmTileN; ++t) crow[t] = acc[r][t];
          }
        } else {
          // Edge tile: generic loops, same ascending-k accumulation order.
          for (int64_t r = 0; r < mb; ++r) {
            const float* ar = a_rows[i + r];
            float* crow = c + (i + r) * ldc + j;
            for (int64_t p = 0; p < k; ++p) {
              const float av = ar[p];
              const float* brow = bbase + p * ldb + j;
#pragma omp simd
              for (int64_t t = 0; t < nb; ++t) crow[t] += av * brow[t];
            }
          }
        }
      }
    }
  }
}

Matrix GemmBlocked(const Matrix& a, const Matrix& b, bool trans_a,
                   bool trans_b) {
  const int64_t m = trans_a ? a.cols() : a.rows();
  const int64_t k = trans_a ? a.rows() : a.cols();
  const int64_t k2 = trans_b ? b.cols() : b.rows();
  const int64_t n = trans_b ? b.rows() : b.cols();
  LAYERGCN_CHECK_EQ(k, k2) << "MatMul inner dimension mismatch";
  Matrix out(m, n);
  if (m == 0 || n == 0) return out;
  OBS_SPAN("gemm");
  OBS_COUNT("gemm.calls", 1);
  OBS_COUNT("gemm.flops", 2 * m * n * k);

  // Normalize both operands so the micro-kernel always sees row pointers on
  // the left and a (k x n) row-major panel on the right. The transpose
  // copies are O(elements) against O(m*n*k) compute.
  Matrix at_storage, bt_storage;
  const Matrix* a_eff = &a;
  if (trans_a) {
    at_storage = CopyTranspose(a);
    a_eff = &at_storage;
  }
  const Matrix* b_eff = &b;
  if (trans_b) {
    bt_storage = CopyTranspose(b);
    b_eff = &bt_storage;
  }

  std::vector<const float*> a_rows(static_cast<size_t>(m));
  for (int64_t i = 0; i < m; ++i) {
    a_rows[static_cast<size_t>(i)] = a_eff->row(i);
  }

  if (m * n * k < kParallelFlops) {
    GemmMicroPanel(a_rows.data(), m, k, *b_eff, 0, n, out.data(), n);
    return out;
  }
  util::ParallelForRanges(0, m, [&](int64_t lo, int64_t hi) {
    GemmMicroPanel(a_rows.data() + lo, hi - lo, k, *b_eff, 0, n, out.row(lo),
                   n);
  });
  return out;
}

}  // namespace layergcn::tensor
