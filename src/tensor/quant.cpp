#include "tensor/quant.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace layergcn::tensor {

Int8Rows QuantizeInt8PerRow(const Matrix& m) {
  Int8Rows q;
  q.rows = m.rows();
  q.cols = m.cols();
  q.data.resize(static_cast<size_t>(m.size()));
  q.scales.resize(static_cast<size_t>(m.rows()));
  for (int64_t r = 0; r < m.rows(); ++r) {
    const float* src = m.row(r);
    float amax = 0.f;
    for (int64_t c = 0; c < m.cols(); ++c) {
      amax = std::max(amax, std::fabs(src[c]));
    }
    // An all-zero row quantizes to zeros under any scale; 1.0 keeps the
    // dequantization well-defined.
    const float scale = amax > 0.f ? amax / 127.f : 1.f;
    const float inv = 1.f / scale;
    int8_t* dst = q.data.data() + r * m.cols();
    for (int64_t c = 0; c < m.cols(); ++c) {
      const long v = std::lrintf(src[c] * inv);
      dst[c] = static_cast<int8_t>(std::clamp<long>(v, -127, 127));
    }
    q.scales[static_cast<size_t>(r)] = scale;
  }
  return q;
}

Matrix DequantizeInt8(const Int8Rows& q) {
  Matrix m(q.rows, q.cols);
  for (int64_t r = 0; r < q.rows; ++r) {
    const int8_t* src = q.row(r);
    const float scale = q.scales[static_cast<size_t>(r)];
    float* dst = m.row(r);
    for (int64_t c = 0; c < q.cols; ++c) {
      dst[c] = static_cast<float>(src[c]) * scale;
    }
  }
  return m;
}

Bf16Rows ToBf16Rows(const Matrix& m) {
  Bf16Rows q;
  q.rows = m.rows();
  q.cols = m.cols();
  q.data.resize(static_cast<size_t>(m.size()));
  const float* src = m.data();
  for (int64_t i = 0; i < m.size(); ++i) {
    q.data[static_cast<size_t>(i)] = F32ToBf16(src[i]);
  }
  return q;
}

Matrix FromBf16Rows(const Bf16Rows& q) {
  Matrix m(q.rows, q.cols);
  float* dst = m.data();
  for (size_t i = 0; i < q.data.size(); ++i) {
    dst[i] = Bf16ToF32(q.data[i]);
  }
  return m;
}

Int8Panel TransposeToPanel(const Int8Rows& rows) {
  Int8Panel panel;
  panel.depth = rows.cols;
  panel.count = rows.rows;
  panel.data.resize(static_cast<size_t>(rows.rows * rows.cols));
  panel.scales = rows.scales;
  for (int64_t r = 0; r < rows.rows; ++r) {
    const int8_t* src = rows.row(r);
    for (int64_t p = 0; p < rows.cols; ++p) {
      panel.data[static_cast<size_t>(p * rows.rows + r)] = src[p];
    }
  }
  return panel;
}

Bf16Panel TransposeToPanel(const Bf16Rows& rows) {
  Bf16Panel panel;
  panel.depth = rows.cols;
  panel.count = rows.rows;
  panel.data.resize(static_cast<size_t>(rows.rows * rows.cols));
  for (int64_t r = 0; r < rows.rows; ++r) {
    const uint16_t* src = rows.row(r);
    for (int64_t p = 0; p < rows.cols; ++p) {
      panel.data[static_cast<size_t>(p * rows.rows + r)] = src[p];
    }
  }
  return panel;
}

}  // namespace layergcn::tensor
