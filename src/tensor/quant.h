// Quantized embedding storage for bandwidth-conscious serving.
//
// The serving hot path is memory-bandwidth-bound on item-embedding reads:
// scoring one user against every item streams the whole item matrix. Two
// compact encodings shrink that stream while f32 stays the bit-exact
// reference:
//
//   int8   symmetric per-row quantization. Each row r stores its own scale
//          s_r = max|x| / 127 and bytes q = rint(x / s_r), so
//          dequant(q) = q * s_r and |x - dequant(q)| <= s_r / 2. A dot
//          product accumulates the int8 x int8 products exactly in int32
//          (<= 127*127*dim, far below 2^31 for any realistic dim) and
//          applies s_u * s_i once at the end — integer accumulation is
//          order-independent, so the int8 path is deterministic at any
//          thread count by construction.
//   bf16   round-to-nearest-even truncation of each f32 to its top 16
//          bits. Dequantization is a 16-bit shift; scoring accumulates in
//          f32 in ascending-depth order, matching the f32 kernel's
//          per-element order, so it is equally deterministic.
//
// Row-major `*Rows` structs mirror tensor::Matrix (one embedding per row);
// `*Panel` structs hold the depth-major transpose the scoring kernel
// streams with unit stride (built once per snapshot load, never per
// request).

#ifndef LAYERGCN_TENSOR_QUANT_H_
#define LAYERGCN_TENSOR_QUANT_H_

#include <cstdint>
#include <cstring>
#include <vector>

#include "tensor/matrix.h"

namespace layergcn::tensor {

/// Rounds to the nearest bf16 (ties to even), the standard truncation used
/// by every bf16 implementation. Relative error <= 2^-8.
inline uint16_t F32ToBf16(float f) {
  uint32_t bits;
  std::memcpy(&bits, &f, sizeof(bits));
  const uint32_t lsb = (bits >> 16) & 1u;
  bits += 0x7fffu + lsb;
  return static_cast<uint16_t>(bits >> 16);
}

/// Exact widening: every bf16 value is representable in f32.
inline float Bf16ToF32(uint16_t h) {
  const uint32_t bits = static_cast<uint32_t>(h) << 16;
  float f;
  std::memcpy(&f, &bits, sizeof(f));
  return f;
}

/// Row-major int8 matrix with one dequantization scale per row.
struct Int8Rows {
  int64_t rows = 0;
  int64_t cols = 0;
  std::vector<int8_t> data;    // rows * cols, row-major
  std::vector<float> scales;   // one per row

  bool empty() const { return rows == 0 || cols == 0; }
  const int8_t* row(int64_t r) const { return data.data() + r * cols; }
};

/// Row-major bf16 matrix (no scales; bf16 carries its own exponent).
struct Bf16Rows {
  int64_t rows = 0;
  int64_t cols = 0;
  std::vector<uint16_t> data;  // rows * cols, row-major

  bool empty() const { return rows == 0 || cols == 0; }
  const uint16_t* row(int64_t r) const { return data.data() + r * cols; }
};

/// Depth-major int8 item panel: data[p * count + j] is component p of item
/// j, so the kernel's inner item loop is unit-stride. `scales[j]` is item
/// j's dequantization scale.
struct Int8Panel {
  int64_t depth = 0;
  int64_t count = 0;
  std::vector<int8_t> data;    // depth * count
  std::vector<float> scales;   // one per column (item)

  bool empty() const { return depth == 0 || count == 0; }
  const int8_t* depth_row(int64_t p) const { return data.data() + p * count; }
};

/// Depth-major bf16 item panel.
struct Bf16Panel {
  int64_t depth = 0;
  int64_t count = 0;
  std::vector<uint16_t> data;  // depth * count

  bool empty() const { return depth == 0 || count == 0; }
  const uint16_t* depth_row(int64_t p) const {
    return data.data() + p * count;
  }
};

/// Symmetric per-row int8 quantization: scale_r = max|row| / 127 (1.0 for
/// an all-zero row), q = rint(x / scale_r) clamped to [-127, 127].
/// Round-trip error per element is <= scale_r / 2.
Int8Rows QuantizeInt8PerRow(const Matrix& m);

/// Dequantizes back to f32 (q * scale per element).
Matrix DequantizeInt8(const Int8Rows& q);

/// Element-wise bf16 conversion (round-to-nearest-even).
Bf16Rows ToBf16Rows(const Matrix& m);

/// Exact widening of every element back to f32.
Matrix FromBf16Rows(const Bf16Rows& q);

/// Depth-major transposes for the scoring kernels.
Int8Panel TransposeToPanel(const Int8Rows& rows);
Bf16Panel TransposeToPanel(const Bf16Rows& rows);

}  // namespace layergcn::tensor

#endif  // LAYERGCN_TENSOR_QUANT_H_
