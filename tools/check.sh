#!/usr/bin/env bash
# Pre-merge gate: build and test the tree in the two configurations that
# matter before landing a change.
#
#   1. Release        — the configuration benchmarks and users run.
#   2. ASan + UBSan   — catches the memory/UB bugs the fast kernels are most
#                       at risk of (out-of-bounds tile edges, races in the
#                       thread-pool partitioning). LAYERGCN_OBS defaults ON,
#                       so the sanitizers also cover the sharded metrics and
#                       trace-buffer paths.
#   3. TSan           — the training hot path (Adam, autograd backward,
#                       scatter-add, SpMM/GEMM) runs on the shared pool via
#                       the deterministic parallel layer; ThreadSanitizer
#                       gates every test, including the trainer determinism
#                       test, against data races in that layer.
#
# After the release tests, the `obs` stage trains a small synthetic run
# through layergcn_cli with all three observability sinks (--trace-out,
# --metrics-out, --telemetry-out) and gates the outputs with
# validate_jsonl: any malformed JSON/JSONL fails the check.
#
# The `obs-serve` stage covers the serving-tier observability surfaces:
# a 1k-request sweep through layergcn_serve with every sink attached
# (access log, Chrome trace, health status, Prometheus exposition,
# metrics) must emit exactly one schema-valid access record per submitted
# request — including a malformed-lines batch — and the bench_diff tool
# must pass a self-compare, flag an injected 20% p99 regression (exit 2),
# and refuse a cross-hardware comparison (exit 3).
#
# The `retrieval` stage serves one trained snapshot in exact and ivf
# retrieval modes (schema-gated access logs with the retrieval/candidates
# fields), runs the bench_retrieval recall + throughput gates on the
# release build, and drives bench_diff across the two mode summaries in
# both directions (improvement one way, regression exit the other).
#
# The `fault` stage re-runs the CLI under ASan/UBSan with each
# LAYERGCN_FAULT injection point armed (torn checkpoint write, short read,
# bit flip, NaN loss). Every injected fault must be handled gracefully —
# exit 0 (recovered) or exit 1 (structured error) — never a crash, abort,
# or sanitizer report.
#
# The `pipeline` stage is the chaos drill for the continuous
# ingest→train→publish→serve loop (DESIGN.md §16). Under ASan/UBSan it
# runs layergcn_pipeline with each pipeline fault point armed (torn WAL
# commit, torn snapshot rename, NaN loss) — every run must exit 0, answer
# every serve probe (serve.failed == 0), land at least one publish, and
# converge to the clean run's ingest digest. Then it SIGKILLs a
# long-running pipeline mid-flight, clones the surviving directory, and
# restarts both replicas: recovery must replay the WAL (recovered > 0,
# committed = recovered + new) and both replicas must reach bit-identical
# digests. Finally the release-build bench_pipeline summary must
# self-compare clean through bench_diff and trip exit 2 on an injected
# freshness regression.
#
# The `serve` stage builds a UBSan-only config (LAYERGCN_SANITIZE=undefined)
# and smokes the serving subsystem: train 2 synthetic epochs, export a
# snapshot, then serve 1k JSONL requests through layergcn_serve under each
# serve fault point (snapshot bit flip, torn reload, slow scoring) plus a
# malformed-request batch — responses must stay structured JSONL.
#
# The `quant` stage runs under both sanitized builds (ASan+UBSan and
# UBSan-only): export an all-encodings snapshot (f32 + int8 + bf16), push
# 1k requests through layergcn_serve with each --encoding, and run the
# bench_serve_latency quality gates (LAYERGCN_BENCH_QUALITY_ONLY=1 skips
# only the throughput floor, which is meaningless under sanitizers) — the
# bench exits non-zero if any quant encoding loses more than 0.1% relative
# Recall@20/NDCG@20 vs f32, if the f32 path diverges from the offline
# reference ranking, or if the score cache fails to hit or to invalidate
# on hot-swap.
#
# The `overload` stage is the chaos drill for the overload controls
# (DESIGN.md §17): three consecutive sustained-overload storms — a burst
# of 3000 deadline-carrying, priority-mixed requests against a default
# queue of 64, far past what the service can score before the deadlines
# land — through layergcn_serve with --max-inflight=auto and --brownout,
# under both ASan/UBSan and TSan. Every storm must exit gracefully with
# zero unstructured outcomes (every request answered or a structured
# shed/expiry), shed the interactive class no harder than batch, and
# emit exactly one schema-valid access record per request carrying the
# priority and brownout_level fields. The release-build bench_overload
# then gates goodput (adaptive limiter + brownout >= 1.5x the static
# baseline at 3x capacity) and its BENCH_overload.json must self-compare
# clean through bench_diff and trip exit 2 on an injected p99 regression.
#
# Usage: tools/check.sh [build-root]     (default: build-check/)
# Exits non-zero on the first failing build or test.

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_root="${1:-${repo_root}/build-check}"
jobs="$(nproc 2>/dev/null || echo 2)"

run_config() {
  local name="$1"; shift
  local dir="${build_root}/${name}"
  echo "=== [${name}] configure ==="
  cmake -S "${repo_root}" -B "${dir}" "$@"
  echo "=== [${name}] build ==="
  cmake --build "${dir}" -j "${jobs}"
  echo "=== [${name}] ctest ==="
  ctest --test-dir "${dir}" --output-on-failure -j "${jobs}"
}

run_config release -DCMAKE_BUILD_TYPE=Release

run_obs_stage() {
  local dir="${build_root}/release"
  local out="${build_root}/obs-out"
  echo "=== [obs] CLI run with trace/metrics/telemetry sinks ==="
  mkdir -p "${out}"
  "${dir}/tools/layergcn_cli" --dataset=mooc --scale=0.2 --epochs=2 \
    --model=LayerGCN \
    --trace-out="${out}/trace.json" \
    --metrics-out="${out}/metrics.json" \
    --telemetry-out="${out}/telemetry.jsonl"
  echo "=== [obs] validate sink outputs ==="
  "${dir}/tools/validate_jsonl" \
    "${out}/trace.json" "${out}/metrics.json" "${out}/telemetry.jsonl"
}
run_obs_stage

# Serving-tier observability: one instrumented sweep with every sink
# attached, schema-gated end to end, then the bench_diff exit-code matrix
# on synthetic fixtures with identical env stamps.
run_obs_serve_stage() {
  local dir="${build_root}/release"
  local out="${build_root}/obs-serve-out"
  rm -rf "${out}"
  mkdir -p "${out}"
  echo "=== [obs-serve] train 2 epochs + export serving snapshot ==="
  "${dir}/tools/layergcn_cli" --dataset=mooc --scale=0.2 --epochs=2 \
    --model=LayerGCN --export-snapshot="${out}/snaps"

  echo "=== [obs-serve] 1k requests with access/trace/health/prom sinks ==="
  "${dir}/tools/layergcn_serve" --snapshot-dir="${out}/snaps" \
    --random-requests=1000 --seed=13 \
    --access-log="${out}/access.jsonl" \
    --trace-out="${out}/trace.json" \
    --health-out="${out}/health.json" \
    --prom-out="${out}/metrics.prom" \
    --metrics-out="${out}/metrics.json" \
    > "${out}/responses.jsonl"
  "${dir}/tools/validate_jsonl" "${out}/responses.jsonl" \
    "${out}/access.jsonl" "${out}/trace.json" "${out}/health.json" \
    "${out}/metrics.json"
  local records
  records="$(wc -l < "${out}/access.jsonl")"
  if [[ "${records}" -ne 1000 ]]; then
    echo "OBS-SERVE FAILED: access log has ${records} records, want 1000"
    exit 1
  fi
  if ! grep -q '^layergcn_serve_requests' "${out}/metrics.prom"; then
    echo "OBS-SERVE FAILED: no layergcn_serve_requests in ${out}/metrics.prom"
    exit 1
  fi

  # Malformed lines must still produce one access record each, flagged and
  # status-coded, in a stream validate_jsonl accepts.
  echo "=== [obs-serve] malformed request lines hit the access log ==="
  printf '%s\n' \
    '{"user": 0, "k": 5}' \
    'not json at all' \
    '{"user": -3}' \
    | "${dir}/tools/layergcn_serve" --snapshot-dir="${out}/snaps" \
      --access-log="${out}/access-malformed.jsonl" \
      > "${out}/responses-malformed.jsonl"
  "${dir}/tools/validate_jsonl" "${out}/responses-malformed.jsonl" \
    "${out}/access-malformed.jsonl"
  records="$(wc -l < "${out}/access-malformed.jsonl")"
  if [[ "${records}" -ne 3 ]]; then
    echo "OBS-SERVE FAILED: malformed batch logged ${records} records, want 3"
    exit 1
  fi
  if ! grep -q 'INVALID_ARGUMENT' "${out}/access-malformed.jsonl"; then
    echo "OBS-SERVE FAILED: malformed request not status-coded in access log"
    exit 1
  fi

  echo "=== [obs-serve] bench_diff exit-code matrix ==="
  cat > "${out}/bench-base.json" <<'EOF'
{
  "env": {"hardware_concurrency": 8, "compute_pool_threads": 8,
          "compiler": "gcc", "build": "Release", "obs_enabled": true,
          "sanitizer": "none"},
  "bench": "serve_latency",
  "passes": [
    {"pass": "clean", "requests": 1000, "p50_us": 100.0, "p99_us": 500.0,
     "mean_us": 120.0}
  ]
}
EOF
  "${dir}/tools/bench_diff" "${out}/bench-base.json" "${out}/bench-base.json"
  sed 's/"p99_us": 500.0/"p99_us": 600.0/' "${out}/bench-base.json" \
    > "${out}/bench-regressed.json"
  local rc=0
  "${dir}/tools/bench_diff" "${out}/bench-base.json" \
    "${out}/bench-regressed.json" || rc=$?
  if [[ "${rc}" -ne 2 ]]; then
    echo "OBS-SERVE FAILED: bench_diff exit ${rc} on 20% regression, want 2"
    exit 1
  fi
  sed 's/"hardware_concurrency": 8/"hardware_concurrency": 16/' \
    "${out}/bench-base.json" > "${out}/bench-othermachine.json"
  rc=0
  "${dir}/tools/bench_diff" "${out}/bench-base.json" \
    "${out}/bench-othermachine.json" || rc=$?
  if [[ "${rc}" -ne 3 ]]; then
    echo "OBS-SERVE FAILED: bench_diff exit ${rc} on env mismatch, want 3"
    exit 1
  fi
}
run_obs_serve_stage

# Two-stage retrieval: serve the same trained snapshot in exact and ivf
# modes (access logs schema-gated — every record must carry the retrieval
# mode and candidate count), run the bench_retrieval recall + per-core
# throughput gates on the release build, and push the exact-vs-ivf mode
# summaries through bench_diff in both directions: exact -> ivf must pass
# (throughput improves, recall within threshold), ivf -> exact must trip
# the regression exit (the throughput it would give up).
run_retrieval_stage() {
  local dir="${build_root}/release"
  local out="${build_root}/retrieval-out"
  rm -rf "${out}"
  mkdir -p "${out}"
  echo "=== [retrieval] train 2 epochs + export serving snapshot ==="
  "${dir}/tools/layergcn_cli" --dataset=mooc --scale=0.2 --epochs=2 \
    --model=LayerGCN --export-snapshot="${out}/snaps"
  for mode in exact ivf; do
    echo "=== [retrieval] 1k requests --retrieval=${mode} ==="
    "${dir}/tools/layergcn_serve" --snapshot-dir="${out}/snaps" \
      --random-requests=1000 --seed=17 --retrieval="${mode}" \
      --cells=32 --nprobe=4 --recall-sample=100 \
      --access-log="${out}/access-${mode}.jsonl" \
      --metrics-out="${out}/metrics-${mode}.json" \
      > "${out}/responses-${mode}.jsonl"
    "${dir}/tools/validate_jsonl" "${out}/responses-${mode}.jsonl" \
      "${out}/access-${mode}.jsonl" "${out}/metrics-${mode}.json"
    if ! grep -q "\"retrieval\":\"${mode}\"" "${out}/access-${mode}.jsonl"; then
      echo "RETRIEVAL STAGE FAILED: no ${mode} records in access log"
      exit 1
    fi
  done
  echo "=== [retrieval] bench_retrieval recall + throughput gates ==="
  ( cd "${out}" && LAYERGCN_BENCH_RETRIEVAL_COMPARE_OUT="${out}/mode" \
      "${dir}/bench/bench_retrieval" )
  echo "=== [retrieval] bench_diff across retrieval modes ==="
  "${dir}/tools/bench_diff" "${out}/mode-exact.json" "${out}/mode-ivf.json"
  local rc=0
  "${dir}/tools/bench_diff" "${out}/mode-ivf.json" "${out}/mode-exact.json" \
    || rc=$?
  if [[ "${rc}" -ne 2 ]]; then
    echo "RETRIEVAL STAGE FAILED: bench_diff exit ${rc} on ivf -> exact," \
         "want 2 (throughput regression)"
    exit 1
  fi
}
run_retrieval_stage

run_config asan-ubsan -DCMAKE_BUILD_TYPE=RelWithDebInfo -DLAYERGCN_SANITIZE=ON

# Fault-injection sweep: the ASan/UBSan CLI must survive every injection
# point without crashing (exit 0 = recovered, exit 1 = structured error).
run_fault_stage() {
  local dir="${build_root}/asan-ubsan"
  local out="${build_root}/fault-out"
  mkdir -p "${out}"
  local faults=(
    "checkpoint.torn_write"
    "checkpoint.short_read"
    "checkpoint.bit_flip"
    "trainer.nan_loss:2"
    "checkpoint.torn_write,checkpoint.bit_flip"
  )
  for fault in "${faults[@]}"; do
    echo "=== [fault] LAYERGCN_FAULT=${fault} ==="
    local ckpt_dir="${out}/ckpt-${fault//[^a-z0-9_]/-}"
    rm -rf "${ckpt_dir}"
    local rc=0
    LAYERGCN_FAULT="${fault}" \
      "${dir}/tools/layergcn_cli" --dataset=mooc --scale=0.2 --epochs=4 \
      --model=LayerGCN --checkpoint-dir="${ckpt_dir}" \
      --telemetry-out="${out}/telemetry-${fault//[^a-z0-9_]/-}.jsonl" \
      || rc=$?
    if [[ "${rc}" -gt 1 ]]; then
      echo "FAULT STAGE FAILED: LAYERGCN_FAULT=${fault} exited ${rc}" \
           "(expected graceful 0 or 1)"
      exit 1
    fi
    # Whatever happened, the telemetry stream must still be valid JSONL
    # (NaN losses serialize as null) and carry the watchdog counters.
    "${dir}/tools/validate_jsonl" \
      "${out}/telemetry-${fault//[^a-z0-9_]/-}.jsonl"
  done
  # A faulted run must remain resumable: the surviving checkpoints restore.
  echo "=== [fault] resume after injected faults ==="
  LAYERGCN_FAULT="" "${dir}/tools/layergcn_cli" --dataset=mooc --scale=0.2 \
    --epochs=4 --model=LayerGCN \
    --checkpoint-dir="${out}/ckpt-checkpoint-torn_write" --resume
}
run_fault_stage

# Continuous-pipeline chaos drill: crash at every boundary of the
# ingest→train→publish→serve loop under ASan/UBSan; serving must never
# degrade below "every well-formed request answered" and the durable state
# must replay bit-identically.
run_pipeline_stage() {
  local dir="${build_root}/asan-ubsan"
  local out="${build_root}/pipeline-out"
  rm -rf "${out}"
  mkdir -p "${out}"

  # Pulls a top-level or nested integer field out of a one-line summary.
  summary_field() {
    grep -o "\"$2\":[0-9][0-9]*" "$1" | head -1 | cut -d: -f2
  }
  # Asserts the invariants every pipeline run must hold: graceful exit
  # (checked by the caller), all serve probes answered, >= 1 publish.
  check_summary() {
    local summary="$1" label="$2"
    local failed publishes
    failed="$(summary_field "${summary}" failed)"
    publishes="$(summary_field "${summary}" publishes)"
    if [[ "${failed}" -ne 0 ]]; then
      echo "PIPELINE STAGE FAILED: ${label}: ${failed} serve requests failed"
      exit 1
    fi
    if [[ "${publishes}" -lt 1 ]]; then
      echo "PIPELINE STAGE FAILED: ${label}: no snapshot published"
      exit 1
    fi
  }

  echo "=== [pipeline] clean reference run ==="
  "${dir}/tools/layergcn_pipeline" --dir="${out}/clean" \
    --cycles=4 --events-per-cycle=200 --min-train-events=300 \
    --summary-out="${out}/summary-clean.json" --quiet
  check_summary "${out}/summary-clean.json" "clean"
  local ref_digest
  ref_digest="$(summary_field "${out}/summary-clean.json" digest)"

  # Fault sweep: same workload with each pipeline fault point armed. The
  # injected crash must be absorbed (exit 0, no serve failure, a publish
  # still lands) and the committed event stream must converge to the
  # clean run's digest — recovery is lossless, not merely survivable.
  local pipeline_faults=(
    "wal.torn_write"
    "wal.torn_write:2"
    "publish.torn_rename"
    "trainer.nan_loss:2"
    "wal.torn_write,publish.torn_rename"
  )
  for fault in "${pipeline_faults[@]}"; do
    local tag="${fault//[^a-z0-9_]/-}"
    echo "=== [pipeline] LAYERGCN_FAULT=${fault} ==="
    local rc=0
    LAYERGCN_FAULT="${fault}" "${dir}/tools/layergcn_pipeline" \
      --dir="${out}/fault-${tag}" \
      --cycles=4 --events-per-cycle=200 --min-train-events=300 \
      --summary-out="${out}/summary-${tag}.json" --quiet || rc=$?
    if [[ "${rc}" -ne 0 ]]; then
      echo "PIPELINE STAGE FAILED: LAYERGCN_FAULT=${fault} exited ${rc}"
      exit 1
    fi
    check_summary "${out}/summary-${tag}.json" "LAYERGCN_FAULT=${fault}"
    local digest
    digest="$(summary_field "${out}/summary-${tag}.json" digest)"
    if [[ "${digest}" != "${ref_digest}" ]]; then
      echo "PIPELINE STAGE FAILED: LAYERGCN_FAULT=${fault} digest" \
           "${digest} != clean ${ref_digest} (recovery lost events)"
      exit 1
    fi
  done

  # Crash-restart drill: SIGKILL a long-running pipeline mid-flight, clone
  # the surviving directory, and restart both replicas. Start() must
  # replay the WAL (truncating any torn tail) and both replicas — being
  # pure functions of the same durable state — must finish bit-identical.
  echo "=== [pipeline] SIGKILL mid-run + twin restart ==="
  "${dir}/tools/layergcn_pipeline" --dir="${out}/kill" \
    --cycles=100000 --events-per-cycle=100 --min-train-events=300 \
    --cycle-sleep-ms=10 --quiet > /dev/null 2>&1 &
  local pid=$!
  sleep 6
  kill -9 "${pid}" 2>/dev/null || true
  wait "${pid}" 2>/dev/null || true
  cp -r "${out}/kill" "${out}/kill-twin"
  for replica in kill kill-twin; do
    local rc=0
    "${dir}/tools/layergcn_pipeline" --dir="${out}/${replica}" \
      --cycles=3 --events-per-cycle=100 --min-train-events=300 \
      --summary-out="${out}/summary-${replica}.json" --quiet || rc=$?
    if [[ "${rc}" -ne 0 ]]; then
      echo "PIPELINE STAGE FAILED: restart of ${replica} exited ${rc}"
      exit 1
    fi
    if [[ "$(summary_field "${out}/summary-${replica}.json" failed)" -ne 0 ]]
    then
      echo "PIPELINE STAGE FAILED: ${replica} restart dropped serve requests"
      exit 1
    fi
    local recovered committed
    recovered="$(summary_field "${out}/summary-${replica}.json" \
                 recovered_records)"
    committed="$(summary_field "${out}/summary-${replica}.json" \
                 events_committed)"
    if [[ "${recovered}" -lt 1 ]]; then
      echo "PIPELINE STAGE FAILED: ${replica} restart recovered nothing"
      exit 1
    fi
    if [[ "${committed}" -ne $((recovered + 300)) ]]; then
      echo "PIPELINE STAGE FAILED: ${replica} committed ${committed}," \
           "want recovered ${recovered} + 300"
      exit 1
    fi
  done
  local twin_a twin_b
  twin_a="$(summary_field "${out}/summary-kill.json" digest)"
  twin_b="$(summary_field "${out}/summary-kill-twin.json" digest)"
  if [[ "${twin_a}" != "${twin_b}" ]]; then
    echo "PIPELINE STAGE FAILED: twin restarts diverged" \
         "(${twin_a} vs ${twin_b})"
    exit 1
  fi

  # Freshness bench (release build — latencies under ASan are noise):
  # self-compare must pass, an injected 25% freshness regression must trip
  # bench_diff's regression exit.
  echo "=== [pipeline] bench_pipeline + bench_diff gates ==="
  ( cd "${out}" && "${build_root}/release/bench/bench_pipeline" )
  "${build_root}/release/tools/bench_diff" \
    "${out}/BENCH_pipeline.json" "${out}/BENCH_pipeline.json"
  sed 's/"freshness": {"cycles": \([0-9]*\), "batch_events": \([0-9]*\), "p50_us": \([0-9]*\)/"freshness": {"cycles": \1, "batch_events": \2, "p50_us": \3000/' \
    "${out}/BENCH_pipeline.json" > "${out}/BENCH_pipeline_regressed.json"
  local rc=0
  "${build_root}/release/tools/bench_diff" "${out}/BENCH_pipeline.json" \
    "${out}/BENCH_pipeline_regressed.json" || rc=$?
  if [[ "${rc}" -ne 2 ]]; then
    echo "PIPELINE STAGE FAILED: bench_diff exit ${rc} on injected" \
         "freshness regression, want 2"
    exit 1
  fi
}
run_pipeline_stage

# Quantized-serving sweep: export a snapshot carrying every encoding, serve
# the same 1k-request stream with each scoring kernel (responses must stay
# structured JSONL), then let bench_serve_latency assert the quality gates
# under the sanitizer. Takes the build config name as its argument so both
# sanitized builds run it.
run_quant_stage() {
  local name="$1"
  local dir="${build_root}/${name}"
  local out="${build_root}/quant-out-${name}"
  rm -rf "${out}"
  mkdir -p "${out}"
  echo "=== [quant/${name}] train 2 epochs + export all-encodings snapshot ==="
  "${dir}/tools/layergcn_cli" --dataset=mooc --scale=0.2 --epochs=2 \
    --model=LayerGCN --export-snapshot="${out}/snaps" \
    --snapshot-encoding=all
  for enc in f32 int8 bf16; do
    echo "=== [quant/${name}] 1k requests --encoding=${enc} ==="
    "${dir}/tools/layergcn_serve" --snapshot-dir="${out}/snaps" \
      --random-requests=1000 --seed=11 --encoding="${enc}" \
      --metrics-out="${out}/metrics-${enc}.json" \
      > "${out}/responses-${enc}.jsonl"
    "${dir}/tools/validate_jsonl" "${out}/responses-${enc}.jsonl" \
      "${out}/metrics-${enc}.json"
  done
  echo "=== [quant/${name}] bench_serve_latency quality gates ==="
  ( cd "${out}" && LAYERGCN_BENCH_QUALITY_ONLY=1 \
      "${dir}/bench/bench_serve_latency" )
}
run_quant_stage asan-ubsan

# Overload chaos drill: sustained storms far past capacity through a
# sanitized layergcn_serve. The serving tier is what is under test, so
# the snapshot is trained once with the release CLI and shared across
# the sanitized invocations.
run_overload_stage() {
  local name="$1"
  local dir="${build_root}/${name}"
  local out="${build_root}/overload-out-${name}"
  local snaps="${build_root}/overload-snaps"
  rm -rf "${out}"
  mkdir -p "${out}"
  if [[ ! -d "${snaps}" ]]; then
    echo "=== [overload] train 2 epochs + export serving snapshot ==="
    "${build_root}/release/tools/layergcn_cli" --dataset=mooc --scale=0.2 \
      --epochs=2 --model=LayerGCN --export-snapshot="${snaps}"
  fi
  local storm
  for storm in 1 2 3; do
    echo "=== [overload/${name}] sustained overload storm ${storm}/3 ==="
    local rc=0
    "${dir}/tools/layergcn_serve" --snapshot-dir="${snaps}" \
      --random-requests=3000 --burst --seed=$((22 + storm)) \
      --max-inflight=auto --brownout --priority-mix --deadline-us=5000 \
      --access-log="${out}/access-${storm}.jsonl" \
      --metrics-out="${out}/metrics-${storm}.json" \
      --health-out="${out}/health-${storm}.json" \
      --quiet 2> "${out}/summary-${storm}.txt" || rc=$?
    cat "${out}/summary-${storm}.txt"
    if [[ "${rc}" -gt 1 ]]; then
      echo "OVERLOAD STAGE FAILED: storm ${storm} exited ${rc}" \
           "(expected graceful 0 or 1)"
      exit 1
    fi
    # 100% answered-or-structured-shed: every offered request tallied,
    # nothing invalid or unstructured.
    if ! grep -q "^served 3000 requests:" "${out}/summary-${storm}.txt"; then
      echo "OVERLOAD STAGE FAILED: storm ${storm} did not tally all 3000"
      exit 1
    fi
    if ! grep -Fq " 0 invalid (0 malformed), 0 other" \
         "${out}/summary-${storm}.txt"; then
      echo "OVERLOAD STAGE FAILED: storm ${storm} had unstructured outcomes"
      exit 1
    fi
    # The storm must actually overload (something shed), and strict
    # priority must protect the interactive class: with equal per-class
    # offered counts, interactive sheds must not exceed batch sheds.
    local interactive_shed batch_shed
    interactive_shed="$(sed -n 's/.*interactive \([0-9]*\)\/.*/\1/p' \
                        "${out}/summary-${storm}.txt")"
    batch_shed="$(sed -n 's/.*batch \([0-9]*\)\/.*/\1/p' \
                  "${out}/summary-${storm}.txt")"
    if [[ -z "${interactive_shed}" || -z "${batch_shed}" ]]; then
      echo "OVERLOAD STAGE FAILED: storm ${storm} shed nothing at 3x load"
      exit 1
    fi
    if [[ "${interactive_shed}" -gt "${batch_shed}" ]]; then
      echo "OVERLOAD STAGE FAILED: storm ${storm} shed interactive" \
           "${interactive_shed} > batch ${batch_shed}"
      exit 1
    fi
    # One schema-valid access record per request, with the overload
    # fields present (validate_jsonl enforces their domains).
    "${dir}/tools/validate_jsonl" "${out}/access-${storm}.jsonl" \
      "${out}/metrics-${storm}.json" "${out}/health-${storm}.json"
    local records
    records="$(wc -l < "${out}/access-${storm}.jsonl")"
    if [[ "${records}" -ne 3000 ]]; then
      echo "OVERLOAD STAGE FAILED: storm ${storm} access log has" \
           "${records} records, want 3000"
      exit 1
    fi
    if ! grep -q '"priority":' "${out}/access-${storm}.jsonl" || \
       ! grep -q '"brownout_level":' "${out}/access-${storm}.jsonl"; then
      echo "OVERLOAD STAGE FAILED: storm ${storm} access records missing" \
           "priority/brownout_level"
      exit 1
    fi
  done
}
run_overload_stage asan-ubsan

# Goodput gates on the release build (sanitizer timing would be noise),
# then the bench_diff matrix over BENCH_overload.json: self-compare must
# pass, an injected p99 regression must trip the regression exit.
run_overload_bench_gate() {
  local out="${build_root}/overload-out-bench"
  rm -rf "${out}"
  mkdir -p "${out}"
  echo "=== [overload] bench_overload goodput gates ==="
  ( cd "${out}" && "${build_root}/release/bench/bench_overload" )
  echo "=== [overload] bench_diff over BENCH_overload.json ==="
  "${build_root}/release/tools/bench_diff" \
    "${out}/BENCH_overload.json" "${out}/BENCH_overload.json"
  sed 's/"p99_us": \([0-9]*\)/"p99_us": \1000/' \
    "${out}/BENCH_overload.json" > "${out}/BENCH_overload_regressed.json"
  local rc=0
  "${build_root}/release/tools/bench_diff" "${out}/BENCH_overload.json" \
    "${out}/BENCH_overload_regressed.json" || rc=$?
  if [[ "${rc}" -ne 2 ]]; then
    echo "OVERLOAD STAGE FAILED: bench_diff exit ${rc} on injected p99" \
         "regression, want 2"
    exit 1
  fi
}
run_overload_bench_gate

# UBSan-only build (LAYERGCN_SANITIZE=undefined): cheap enough to drive the
# serving subsystem end to end. The serve smoke trains a small synthetic
# run, exports a serving snapshot, plants an older copy as the fallback
# target, and pushes 1k requests through layergcn_serve under every serve
# fault point. Graceful outcomes only: exit 0 (every request answered) or
# 1 (structured setup error) — never a crash or a sanitizer report; the
# response stream must stay valid JSONL throughout.
run_config ubsan -DCMAKE_BUILD_TYPE=RelWithDebInfo -DLAYERGCN_SANITIZE=undefined

run_serve_stage() {
  local dir="${build_root}/ubsan"
  local out="${build_root}/serve-out"
  rm -rf "${out}"
  mkdir -p "${out}"
  echo "=== [serve] train 2 epochs + export serving snapshot ==="
  "${dir}/tools/layergcn_cli" --dataset=mooc --scale=0.2 --epochs=2 \
    --model=LayerGCN --export-snapshot="${out}/snaps"
  # Plant the exported snapshot again under a higher version: the fault
  # sweep corrupts the newest file first, so serving must fall back to the
  # original underneath it.
  local newest
  newest="$(ls "${out}/snaps" | sort | tail -1)"
  cp "${out}/snaps/${newest}" "${out}/snaps/snap-000099.lgcn"

  local serve_faults=(
    ""
    "serve.snapshot_bit_flip"
    "serve.reload_torn_read"
    "serve.slow_score"
    "serve.snapshot_bit_flip,serve.slow_score"
  )
  for fault in "${serve_faults[@]}"; do
    echo "=== [serve] LAYERGCN_FAULT='${fault}' 1k requests ==="
    local tag="${fault//[^a-z0-9_]/-}"
    local rc=0
    LAYERGCN_FAULT="${fault}" "${dir}/tools/layergcn_serve" \
      --snapshot-dir="${out}/snaps" --random-requests=1000 \
      --deadline-us=2000 --seed=7 \
      --metrics-out="${out}/metrics-${tag:-clean}.json" \
      > "${out}/responses-${tag:-clean}.jsonl" || rc=$?
    if [[ "${rc}" -gt 1 ]]; then
      echo "SERVE STAGE FAILED: LAYERGCN_FAULT=${fault} exited ${rc}" \
           "(expected graceful 0 or 1)"
      exit 1
    fi
    "${dir}/tools/validate_jsonl" "${out}/responses-${tag:-clean}.jsonl" \
      "${out}/metrics-${tag:-clean}.json"
  done

  # Malformed request lines must come back as structured error responses
  # in a still-valid JSONL stream, with the valid requests served.
  echo "=== [serve] malformed request lines ==="
  printf '%s\n' \
    '{"user": 0, "k": 5}' \
    'not json at all' \
    '{"user": -3}' \
    '{"user": 1, "k": 999999}' \
    '{"user": 2, "k": 5, "budget_us": 2000}' \
    | "${dir}/tools/layergcn_serve" --snapshot-dir="${out}/snaps" \
      > "${out}/responses-malformed.jsonl"
  "${dir}/tools/validate_jsonl" "${out}/responses-malformed.jsonl"
}
run_serve_stage
run_quant_stage ubsan

# LAYERGCN_SANITIZE=thread exercises the parallel layer under TSan with a
# pool wide enough to interleave even on small CI machines.
LAYERGCN_NUM_THREADS=4 \
  run_config tsan -DCMAKE_BUILD_TYPE=RelWithDebInfo -DLAYERGCN_SANITIZE=thread

run_overload_stage tsan

echo "=== all checks passed ==="
