#!/usr/bin/env bash
# Pre-merge gate: build and test the tree in the two configurations that
# matter before landing a change.
#
#   1. Release        — the configuration benchmarks and users run.
#   2. ASan + UBSan   — catches the memory/UB bugs the fast kernels are most
#                       at risk of (out-of-bounds tile edges, races in the
#                       thread-pool partitioning).
#
# Usage: tools/check.sh [build-root]     (default: build-check/)
# Exits non-zero on the first failing build or test.

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_root="${1:-${repo_root}/build-check}"
jobs="$(nproc 2>/dev/null || echo 2)"

run_config() {
  local name="$1"; shift
  local dir="${build_root}/${name}"
  echo "=== [${name}] configure ==="
  cmake -S "${repo_root}" -B "${dir}" "$@"
  echo "=== [${name}] build ==="
  cmake --build "${dir}" -j "${jobs}"
  echo "=== [${name}] ctest ==="
  ctest --test-dir "${dir}" --output-on-failure -j "${jobs}"
}

run_config release -DCMAKE_BUILD_TYPE=Release
run_config asan-ubsan -DCMAKE_BUILD_TYPE=RelWithDebInfo -DLAYERGCN_SANITIZE=ON

echo "=== all checks passed ==="
