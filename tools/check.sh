#!/usr/bin/env bash
# Pre-merge gate: build and test the tree in the two configurations that
# matter before landing a change.
#
#   1. Release        — the configuration benchmarks and users run.
#   2. ASan + UBSan   — catches the memory/UB bugs the fast kernels are most
#                       at risk of (out-of-bounds tile edges, races in the
#                       thread-pool partitioning). LAYERGCN_OBS defaults ON,
#                       so the sanitizers also cover the sharded metrics and
#                       trace-buffer paths.
#   3. TSan           — the training hot path (Adam, autograd backward,
#                       scatter-add, SpMM/GEMM) runs on the shared pool via
#                       the deterministic parallel layer; ThreadSanitizer
#                       gates every test, including the trainer determinism
#                       test, against data races in that layer.
#
# After the release tests, the `obs` stage trains a small synthetic run
# through layergcn_cli with all three observability sinks (--trace-out,
# --metrics-out, --telemetry-out) and gates the outputs with
# validate_jsonl: any malformed JSON/JSONL fails the check.
#
# Usage: tools/check.sh [build-root]     (default: build-check/)
# Exits non-zero on the first failing build or test.

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_root="${1:-${repo_root}/build-check}"
jobs="$(nproc 2>/dev/null || echo 2)"

run_config() {
  local name="$1"; shift
  local dir="${build_root}/${name}"
  echo "=== [${name}] configure ==="
  cmake -S "${repo_root}" -B "${dir}" "$@"
  echo "=== [${name}] build ==="
  cmake --build "${dir}" -j "${jobs}"
  echo "=== [${name}] ctest ==="
  ctest --test-dir "${dir}" --output-on-failure -j "${jobs}"
}

run_config release -DCMAKE_BUILD_TYPE=Release

run_obs_stage() {
  local dir="${build_root}/release"
  local out="${build_root}/obs-out"
  echo "=== [obs] CLI run with trace/metrics/telemetry sinks ==="
  mkdir -p "${out}"
  "${dir}/tools/layergcn_cli" --dataset=mooc --scale=0.2 --epochs=2 \
    --model=LayerGCN \
    --trace-out="${out}/trace.json" \
    --metrics-out="${out}/metrics.json" \
    --telemetry-out="${out}/telemetry.jsonl"
  echo "=== [obs] validate sink outputs ==="
  "${dir}/tools/validate_jsonl" \
    "${out}/trace.json" "${out}/metrics.json" "${out}/telemetry.jsonl"
}
run_obs_stage

run_config asan-ubsan -DCMAKE_BUILD_TYPE=RelWithDebInfo -DLAYERGCN_SANITIZE=ON

# LAYERGCN_SANITIZE=thread exercises the parallel layer under TSan with a
# pool wide enough to interleave even on small CI machines.
LAYERGCN_NUM_THREADS=4 \
  run_config tsan -DCMAKE_BUILD_TYPE=RelWithDebInfo -DLAYERGCN_SANITIZE=thread

echo "=== all checks passed ==="
