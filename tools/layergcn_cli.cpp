// layergcn_cli — train and evaluate any model in the zoo from the command
// line, on a CSV interaction log or a synthetic benchmark dataset, and
// optionally export top-K recommendations.
//
// Examples:
//   layergcn_cli --dataset=mooc --model=LayerGCN
//   layergcn_cli --data=events.csv --model=LightGCN --layers=3 --epochs=100
//   layergcn_cli --dataset=yelp --scale=2 --out=recs.csv --topk=10
//
// Run with --help for the full flag list.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <filesystem>

#include "core/api.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "serve/snapshot.h"
#include "train/checkpoint.h"
#include "train/stop_token.h"
#include "util/parallel.h"
#include "util/status.h"
#include "util/strings.h"
#include "util/thread_pool.h"

using namespace layergcn;

namespace {

struct Flags {
  std::string model = "LayerGCN";
  std::string dataset;        // synthetic preset name
  std::string data_path;      // CSV path (user,item,timestamp)
  double scale = 1.0;
  uint64_t seed = 42;

  int dim = 64;
  int layers = 4;
  double lr = 1e-3;
  double l2 = 1e-4;
  double dropout = 0.1;
  std::string dropkind = "degreedrop";
  int64_t batch = 2048;
  int epochs = 200;
  int patience = 50;

  std::string ks = "10,20,50";
  std::string out_path;    // recommendations CSV
  std::string save_path;   // checkpoint to write after training
  std::string load_path;   // checkpoint to restore instead of training
  std::string export_snapshot_dir;  // serving snapshot directory
  std::string snapshot_encoding = "all";  // quant sections: all|f32|int8|bf16
  int topk = 10;
  bool verbose = false;
  int threads = 0;  // 0 = hardware concurrency / LAYERGCN_NUM_THREADS

  std::string checkpoint_dir;  // rotating fault-tolerance checkpoints
  int checkpoint_every = 1;
  int keep_checkpoints = 3;
  bool resume = false;
  int64_t max_malformed = 0;  // tolerated malformed CSV rows

  std::string trace_out;      // Chrome trace-event JSON
  std::string metrics_out;    // metrics snapshot JSON
  std::string telemetry_out;  // per-epoch JSONL telemetry
};

void PrintUsage(const char* argv0) {
  std::printf(
      "usage: %s [flags]\n"
      "data source (one of):\n"
      "  --dataset=NAME     synthetic preset: mooc|games|food|yelp\n"
      "  --data=PATH        CSV of user,item,timestamp rows\n"
      "  --scale=F          synthetic dataset scale (default 1.0)\n"
      "model:\n"
      "  --model=NAME       %s\n"
      "                     (default LayerGCN)\n"
      "hyper-parameters:\n"
      "  --dim=N --layers=N --lr=F --l2=F --batch=N\n"
      "  --dropout=F --dropkind=none|dropedge|degreedrop|mixed\n"
      "  --epochs=N --patience=N --seed=N\n"
      "evaluation / output:\n"
      "  --ks=10,20,50      metric cutoffs\n"
      "  --out=PATH         write top-K recommendations CSV\n"
      "  --topk=N           recommendations per user (default 10)\n"
      "  --save=PATH        write a parameter checkpoint after training\n"
      "  --load=PATH        restore a checkpoint and skip training\n"
      "  --export-snapshot=DIR write a serving snapshot (snap-NNNNNN.lgcn,\n"
      "                     versioned by best epoch) for layergcn_serve\n"
      "  --snapshot-encoding=all|f32|int8|bf16  which quantized embedding\n"
      "                     copies ride along in the snapshot (default all;\n"
      "                     the f32 reference is always written)\n"
      "  --verbose          per-epoch logging\n"
      "  --threads=N        compute threads (default: LAYERGCN_NUM_THREADS\n"
      "                     env var, else hardware concurrency); results are\n"
      "                     bit-identical for every N\n"
      "fault tolerance:\n"
      "  --checkpoint-dir=DIR rotating full-state training checkpoints\n"
      "  --checkpoint-every=N checkpoint write cadence in epochs (default 1)\n"
      "  --keep-checkpoints=N retain the newest N checkpoints (default 3)\n"
      "  --resume             resume from the newest valid checkpoint;\n"
      "                       the resumed run is bit-identical to an\n"
      "                       uninterrupted one\n"
      "  --max-malformed=N    tolerate up to N malformed CSV rows, skipped\n"
      "                       with a warning (default 0 = strict)\n"
      "observability:\n"
      "  --trace-out=PATH     Chrome trace-event JSON (chrome://tracing)\n"
      "  --metrics-out=PATH   final metrics snapshot JSON\n"
      "  --telemetry-out=PATH per-epoch JSONL training telemetry\n",
      argv0, "BPR|MultiVAE|EHCF|BUIR|NGCF|LR-GCCF|LightGCN|UltraGCN|"
             "IMP-GCN|LayerGCN|LayerGCN-noDrop");
}

bool ParseFlags(int argc, char** argv, Flags* flags) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const size_t eq = arg.find('=');
    const std::string key = arg.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? "" : arg.substr(eq + 1);
    auto as_double = [&](double* out) {
      return util::ParseDouble(value, out);
    };
    auto as_int = [&](auto* out) {
      int64_t v;
      if (!util::ParseInt64(value, &v)) return false;
      *out = static_cast<std::remove_pointer_t<decltype(out)>>(v);
      return true;
    };
    bool ok = true;
    if (key == "--help" || key == "-h") {
      PrintUsage(argv[0]);
      std::exit(0);
    } else if (key == "--model") {
      flags->model = value;
    } else if (key == "--dataset") {
      flags->dataset = value;
    } else if (key == "--data") {
      flags->data_path = value;
    } else if (key == "--scale") {
      ok = as_double(&flags->scale);
    } else if (key == "--seed") {
      ok = as_int(&flags->seed);
    } else if (key == "--dim") {
      ok = as_int(&flags->dim);
    } else if (key == "--layers") {
      ok = as_int(&flags->layers);
    } else if (key == "--lr") {
      ok = as_double(&flags->lr);
    } else if (key == "--l2") {
      ok = as_double(&flags->l2);
    } else if (key == "--dropout") {
      ok = as_double(&flags->dropout);
    } else if (key == "--dropkind") {
      flags->dropkind = value;
    } else if (key == "--batch") {
      ok = as_int(&flags->batch);
    } else if (key == "--epochs") {
      ok = as_int(&flags->epochs);
    } else if (key == "--patience") {
      ok = as_int(&flags->patience);
    } else if (key == "--ks") {
      flags->ks = value;
    } else if (key == "--out") {
      flags->out_path = value;
    } else if (key == "--save") {
      flags->save_path = value;
    } else if (key == "--load") {
      flags->load_path = value;
    } else if (key == "--export-snapshot") {
      flags->export_snapshot_dir = value;
    } else if (key == "--snapshot-encoding") {
      ok = value == "all" || value == "f32" || value == "int8" ||
           value == "bf16";
      flags->snapshot_encoding = value;
    } else if (key == "--topk") {
      ok = as_int(&flags->topk);
    } else if (key == "--verbose") {
      flags->verbose = true;
    } else if (key == "--threads") {
      ok = as_int(&flags->threads) && flags->threads >= 0;
    } else if (key == "--checkpoint-dir") {
      flags->checkpoint_dir = value;
    } else if (key == "--checkpoint-every") {
      ok = as_int(&flags->checkpoint_every) && flags->checkpoint_every >= 1;
    } else if (key == "--keep-checkpoints") {
      ok = as_int(&flags->keep_checkpoints) && flags->keep_checkpoints >= 1;
    } else if (key == "--resume") {
      flags->resume = true;
    } else if (key == "--max-malformed") {
      ok = as_int(&flags->max_malformed) && flags->max_malformed >= 0;
    } else if (key == "--trace-out") {
      flags->trace_out = value;
    } else if (key == "--metrics-out") {
      flags->metrics_out = value;
    } else if (key == "--telemetry-out") {
      flags->telemetry_out = value;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", key.c_str());
      return false;
    }
    if (!ok) {
      std::fprintf(stderr, "bad value for %s: '%s'\n", key.c_str(),
                   value.c_str());
      return false;
    }
  }
  if (flags->dataset.empty() == flags->data_path.empty()) {
    std::fprintf(stderr,
                 "exactly one of --dataset or --data must be given\n");
    return false;
  }
  if (flags->resume && flags->checkpoint_dir.empty()) {
    std::fprintf(stderr, "--resume requires --checkpoint-dir\n");
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (!ParseFlags(argc, argv, &flags)) {
    PrintUsage(argv[0]);
    return 1;
  }

  // Optional fixed-width compute pool. The deterministic parallel layer
  // guarantees bit-identical results for every width, so --threads is purely
  // a performance knob.
  std::unique_ptr<util::ThreadPool> pool;
  std::unique_ptr<util::parallel::ScopedComputePool> pool_scope;
  if (flags.threads > 0) {
    pool = std::make_unique<util::ThreadPool>(flags.threads);
    pool_scope =
        std::make_unique<util::parallel::ScopedComputePool>(pool.get());
  }

  // Observability sinks: metrics are on whenever any sink is requested,
  // trace recording only with --trace-out (it buffers every span).
  if (!flags.metrics_out.empty() || !flags.telemetry_out.empty() ||
      !flags.trace_out.empty()) {
    obs::SetEnabled(true);
  }
  if (!flags.trace_out.empty()) obs::SetTraceEnabled(true);

  // --- Data ---
  data::Dataset dataset;
  if (!flags.dataset.empty()) {
    dataset =
        data::MakeBenchmarkDataset(flags.dataset, flags.scale, flags.seed);
  } else {
    int32_t num_users = 0, num_items = 0;
    data::LoaderOptions loader_options;
    loader_options.max_malformed = flags.max_malformed;
    data::LoadStats load_stats;
    auto interactions = data::LoadInteractionsOr(
        flags.data_path, loader_options, &num_users, &num_items, &load_stats);
    if (!interactions.ok()) {
      std::fprintf(stderr, "failed to load %s: %s\n", flags.data_path.c_str(),
                   interactions.status().ToString().c_str());
      return 1;
    }
    if (load_stats.rows_malformed > 0) {
      std::printf("skipped %lld malformed row(s) of %lld\n",
                  static_cast<long long>(load_stats.rows_malformed),
                  static_cast<long long>(load_stats.rows_total));
    }
    dataset = data::ChronologicalSplitDataset(
        flags.data_path, num_users, num_items,
        std::move(interactions).value());
  }
  std::printf("%s\n", dataset.Summary().c_str());

  // --- Config ---
  train::TrainConfig cfg;
  cfg.embedding_dim = flags.dim;
  cfg.num_layers = flags.layers;
  cfg.learning_rate = flags.lr;
  cfg.l2_reg = flags.l2;
  cfg.batch_size = flags.batch;
  cfg.edge_drop_ratio = flags.dropout;
  cfg.edge_drop_kind = graph::EdgeDropKindFromString(flags.dropkind);
  cfg.max_epochs = flags.epochs;
  cfg.early_stop_patience = flags.patience;
  cfg.seed = flags.seed;

  std::vector<int> ks;
  for (const std::string& part : util::Split(flags.ks, ',')) {
    int64_t k;
    if (!util::ParseInt64(part, &k) || k <= 0) {
      std::fprintf(stderr, "bad --ks entry: '%s'\n", part.c_str());
      return 1;
    }
    ks.push_back(static_cast<int>(k));
  }

  // --- Train (or restore) ---
  auto model = core::CreateModel(flags.model);
  int exit_code = 0;
  int64_t snapshot_version = 0;  // best epoch when trained; 0 when restored
  if (!flags.load_path.empty()) {
    // Restore: initialize the architecture, then load the checkpoint and
    // evaluate without training.
    util::Rng rng(cfg.seed);
    model->Init(dataset, core::AdaptConfig(flags.model, cfg), &rng);
    model->BeginEpoch(1, &rng);
    const util::StatusOr<int> restored =
        train::LoadCheckpointV2(flags.load_path, model->Params(), nullptr);
    if (!restored.ok()) {
      std::fprintf(stderr, "cannot restore %s: %s\n", flags.load_path.c_str(),
                   restored.status().ToString().c_str());
      return 1;
    }
    std::printf("restored %d parameters from %s\n", restored.value(),
                flags.load_path.c_str());
    const eval::RankingMetrics m = train::EvaluateRecommender(
        model.get(), dataset, ks, eval::EvalSplit::kTest);
    std::printf("test: %s\n", m.ToString().c_str());
  } else {
    train::TrainOptions options;
    options.report_ks = ks;
    options.verbose = flags.verbose;
    options.telemetry_path = flags.telemetry_out;
    options.checkpoint_dir = flags.checkpoint_dir;
    options.checkpoint_every = flags.checkpoint_every;
    options.keep_checkpoints = flags.keep_checkpoints;
    options.resume = flags.resume;
    // SIGINT/SIGTERM stop training at the next batch boundary after writing
    // a resumable checkpoint, instead of killing the process mid-write.
    train::InstallStopSignalHandlers();
    const train::TrainResult result = train::FitRecommender(
        model.get(), dataset, core::AdaptConfig(flags.model, cfg), options);
    if (!result.status.ok()) {
      std::fprintf(stderr, "training failed: %s\n",
                   result.status.ToString().c_str());
      return 1;
    }
    if (result.interrupted) {
      std::printf("training interrupted after epoch %d%s\n",
                  result.epochs_run,
                  flags.checkpoint_dir.empty()
                      ? ""
                      : "; rerun with --resume to continue");
      exit_code = 2;
    }
    snapshot_version = result.best_epoch;
    std::printf("model=%s best_epoch=%d epochs_run=%d train_time=%.1fs\n",
                flags.model.c_str(), result.best_epoch, result.epochs_run,
                result.train_seconds);
    if (result.start_epoch > 1) {
      std::printf("resumed at epoch %d\n", result.start_epoch);
    }
    if (result.watchdog_rollbacks > 0) {
      std::printf("watchdog rollbacks: %d\n", result.watchdog_rollbacks);
    }
    std::printf("test: %s\n", result.test_metrics.ToString().c_str());
    if (!result.telemetry_path.empty()) {
      std::printf("wrote telemetry to %s\n", result.telemetry_path.c_str());
    }
    if (!flags.save_path.empty()) {
      const util::Status saved =
          train::SaveCheckpointV2(flags.save_path, model->Params(), nullptr);
      if (!saved.ok()) {
        std::fprintf(stderr, "cannot save %s: %s\n", flags.save_path.c_str(),
                     saved.ToString().c_str());
        return 1;
      }
      std::printf("saved checkpoint to %s\n", flags.save_path.c_str());
    }
  }

  // --- Export serving snapshot ---
  if (!flags.export_snapshot_dir.empty()) {
    model->PrepareEval();
    const train::EmbeddingView view = model->GetEmbeddingView();
    if (!view.valid()) {
      std::fprintf(stderr,
                   "--export-snapshot needs an inner-product model with an "
                   "embedding view; %s has none\n",
                   flags.model.c_str());
      return 1;
    }
    train::ServingExport ex;
    ex.version = snapshot_version;
    // The view's user block may be a node matrix with trailing non-user
    // rows; the snapshot carries exactly one row per user id.
    ex.user_emb = tensor::Matrix(dataset.num_users, view.user->cols());
    for (int32_t u = 0; u < dataset.num_users; ++u) {
      const float* src = view.user->row(u);
      float* dst = ex.user_emb.row(u);
      for (int64_t c = 0; c < view.user->cols(); ++c) dst[c] = src[c];
    }
    ex.item_emb = *view.item;
    ex.user_history = dataset.train_graph.user_items();
    ex.write_int8 = flags.snapshot_encoding == "all" ||
                    flags.snapshot_encoding == "int8";
    ex.write_bf16 = flags.snapshot_encoding == "all" ||
                    flags.snapshot_encoding == "bf16";
    std::error_code ec;
    std::filesystem::create_directories(flags.export_snapshot_dir, ec);
    const std::string snap_path = serve::SnapshotStore::SnapshotPath(
        flags.export_snapshot_dir, ex.version);
    const util::Status saved = train::SaveServingExport(snap_path, ex);
    if (!saved.ok()) {
      std::fprintf(stderr, "cannot export snapshot %s: %s\n",
                   snap_path.c_str(), saved.ToString().c_str());
      return 1;
    }
    std::printf("exported serving snapshot to %s\n", snap_path.c_str());
  }

  // --- Export recommendations ---
  if (!flags.out_path.empty()) {
    std::ofstream out(flags.out_path);
    if (!out.good()) {
      std::fprintf(stderr, "cannot write %s\n", flags.out_path.c_str());
      return 1;
    }
    out << "user,rank,item,score\n";
    model->PrepareEval();
    for (int32_t u = 0; u < dataset.num_users; ++u) {
      if (dataset.train_graph.UserDegree(u) == 0) continue;
      const tensor::Matrix scores = model->ScoreUsers({u});
      std::vector<bool> seen(static_cast<size_t>(dataset.num_items), false);
      for (int32_t i :
           dataset.train_graph.user_items()[static_cast<size_t>(u)]) {
        seen[static_cast<size_t>(i)] = true;
      }
      const auto top = eval::TopKIndices(scores.row(0), dataset.num_items,
                                         flags.topk, &seen);
      for (size_t r = 0; r < top.size(); ++r) {
        out << u << "," << (r + 1) << "," << top[r] << ","
            << scores(0, top[r]) << "\n";
      }
    }
    std::printf("wrote top-%d recommendations to %s\n", flags.topk,
                flags.out_path.c_str());
  }

  // --- Export observability sinks ---
  if (!flags.metrics_out.empty()) {
    if (!obs::MetricsRegistry::Global().WriteSnapshotJson(flags.metrics_out)) {
      std::fprintf(stderr, "cannot write %s\n", flags.metrics_out.c_str());
      return 1;
    }
    std::printf("wrote metrics snapshot to %s\n", flags.metrics_out.c_str());
  }
  if (!flags.trace_out.empty()) {
    if (!obs::TraceRecorder::Global().WriteChromeTrace(flags.trace_out)) {
      std::fprintf(stderr, "cannot write %s\n", flags.trace_out.c_str());
      return 1;
    }
    std::printf("wrote %lld trace events to %s (load in chrome://tracing)\n",
                static_cast<long long>(obs::TraceRecorder::Global().NumEvents()),
                flags.trace_out.c_str());
  }
  return exit_code;
}
