// validate_jsonl — strict JSON checker for the observability sinks.
//
// Usage: validate_jsonl FILE...
//
// Files ending in .jsonl are validated line by line (every non-empty line
// must be a complete JSON object); anything else must be one valid JSON
// document. Typed records get schema checks on top:
//   "type":"epoch"   trainer telemetry — required keys present, no
//                    unknown keys (tracks obs::EpochTelemetryJson);
//   "type":"access"  serving access log — required keys present, request
//                    ids unique within the file and >= 1, status in the
//                    util::StatusCode enum, encoding in {f32,int8,bf16},
//                    retrieval in {exact,ivf} with a non-negative
//                    candidates count, priority in {interactive,batch,
//                    background}, brownout_level in [0,3], flag/status
//                    consistency (malformed => INVALID_ARGUMENT, shed =>
//                    RESOURCE_EXHAUSTED with a retry_after_ms hint,
//                    expired => DEADLINE_EXCEEDED, never both), and
//                    per-stage micros summing to at most latency_us (the
//                    stages time disjoint sub-intervals of the request).
// Used by tools/check.sh to gate the CLI's --trace-out, --metrics-out,
// --telemetry-out, and layergcn_serve's --access-log outputs. Exits
// non-zero if any file is missing, empty, or malformed.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "obs/json.h"

namespace {

bool HasSuffix(const std::string& s, const char* suffix) {
  const size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

// Must track obs::EpochTelemetryJson: every key it always writes, plus the
// eval block on evaluated epochs.
const std::set<std::string>& EpochRequiredKeys() {
  static const std::set<std::string> keys = {
      "type",           "epoch",          "loss",
      "batch_count",    "batch_loss_min", "batch_loss_max",
      "batch_loss_mean", "grad_norm",     "embedding_norm",
      "adam_lr",        "adam_steps",     "neg_sampled",
      "neg_rejected",   "checkpoint_writes", "checkpoint_fallbacks",
      "watchdog_rollbacks", "epoch_seconds", "graph_seconds",
      "sampler_seconds", "forward_seconds", "backward_seconds",
      "adam_seconds"};
  return keys;
}

const std::set<std::string>& EpochOptionalKeys() {
  static const std::set<std::string> keys = {"eval_k", "eval_recall",
                                             "eval_ndcg", "eval_seconds"};
  return keys;
}

// Schema check for one "type":"epoch" telemetry record.
bool ValidateEpochRecord(const layergcn::obs::JsonValue& value,
                         const std::string& path, int64_t line_no) {
  for (const std::string& key : EpochRequiredKeys()) {
    if (value.Find(key) == nullptr) {
      std::fprintf(stderr, "%s:%lld: epoch record missing key \"%s\"\n",
                   path.c_str(), static_cast<long long>(line_no),
                   key.c_str());
      return false;
    }
  }
  for (const auto& [key, member] : value.object) {
    (void)member;
    if (EpochRequiredKeys().count(key) == 0 &&
        EpochOptionalKeys().count(key) == 0) {
      std::fprintf(stderr, "%s:%lld: epoch record has unknown key \"%s\"\n",
                   path.c_str(), static_cast<long long>(line_no),
                   key.c_str());
      return false;
    }
  }
  return true;
}

// Keys AccessLog::RecordJson always writes ("error" is the only optional
// one, present exactly when the status is not OK).
const std::set<std::string>& AccessRequiredKeys() {
  static const std::set<std::string> keys = {
      "type",     "id",        "user",       "k",
      "budget_us", "priority", "status",     "malformed",  "shed",
      "expired",  "cached",    "partial",    "degraded",
      "brownout_level",        "retry_after_ms",           "encoding",
      "retrieval", "candidates",
      "snapshot_version",      "submit_us",  "done_us",
      "latency_us", "admission_us", "snapshot_us", "cache_us",
      "score_us", "serialize_us"};
  return keys;
}

const std::set<std::string>& StatusNames() {
  static const std::set<std::string> names = {
      "OK",           "INVALID_ARGUMENT", "NOT_FOUND",
      "DATA_LOSS",    "FAILED_PRECONDITION", "RESOURCE_EXHAUSTED",
      "CANCELLED",    "INTERNAL",         "UNAVAILABLE",
      "DEADLINE_EXCEEDED"};
  return names;
}

// Schema + invariant check for one "type":"access" record. `seen_ids`
// accumulates per file to enforce request-id uniqueness.
bool ValidateAccessRecord(const layergcn::obs::JsonValue& value,
                          const std::string& path, int64_t line_no,
                          std::set<uint64_t>* seen_ids) {
  const auto complain = [&](const std::string& what) {
    std::fprintf(stderr, "%s:%lld: access record %s\n", path.c_str(),
                 static_cast<long long>(line_no), what.c_str());
    return false;
  };
  for (const std::string& key : AccessRequiredKeys()) {
    if (value.Find(key) == nullptr) {
      return complain("missing key \"" + key + "\"");
    }
  }
  for (const auto& [key, member] : value.object) {
    (void)member;
    if (AccessRequiredKeys().count(key) == 0 && key != "error") {
      return complain("has unknown key \"" + key + "\"");
    }
  }

  const layergcn::obs::JsonValue* id = value.Find("id");
  if (!id->is_number() || id->number < 1) {
    return complain("id must be a number >= 1");
  }
  const uint64_t request_id = static_cast<uint64_t>(id->number);
  if (!seen_ids->insert(request_id).second) {
    return complain("duplicate request id " + std::to_string(request_id));
  }

  const layergcn::obs::JsonValue* status = value.Find("status");
  if (!status->is_string() || StatusNames().count(status->string) == 0) {
    return complain("status is not a known StatusCode name");
  }
  if (status->string == "OK" && value.Find("error") != nullptr) {
    return complain("has \"error\" despite OK status");
  }

  const layergcn::obs::JsonValue* encoding = value.Find("encoding");
  if (!encoding->is_string() ||
      (encoding->string != "f32" && encoding->string != "int8" &&
       encoding->string != "bf16")) {
    return complain("encoding must be f32|int8|bf16");
  }

  const layergcn::obs::JsonValue* retrieval = value.Find("retrieval");
  if (!retrieval->is_string() ||
      (retrieval->string != "exact" && retrieval->string != "ivf")) {
    return complain("retrieval must be exact|ivf");
  }
  const layergcn::obs::JsonValue* candidates = value.Find("candidates");
  if (!candidates->is_number() || candidates->number < 0) {
    return complain("candidates must be a non-negative number");
  }

  const layergcn::obs::JsonValue* priority = value.Find("priority");
  if (!priority->is_string() ||
      (priority->string != "interactive" && priority->string != "batch" &&
       priority->string != "background")) {
    return complain("priority must be interactive|batch|background");
  }
  const layergcn::obs::JsonValue* brownout = value.Find("brownout_level");
  if (!brownout->is_number() || brownout->number < 0 ||
      brownout->number > 3) {
    return complain("brownout_level must be a number in [0, 3]");
  }
  const layergcn::obs::JsonValue* retry = value.Find("retry_after_ms");
  if (!retry->is_number() || retry->number < 0) {
    return complain("retry_after_ms must be a non-negative number");
  }

  // Flag/status consistency.
  const auto flag = [&](const char* name) {
    const layergcn::obs::JsonValue* v = value.Find(name);
    return v->type == layergcn::obs::JsonValue::Type::kBool && v->boolean;
  };
  if (flag("malformed") && status->string != "INVALID_ARGUMENT") {
    return complain("malformed but status is not INVALID_ARGUMENT");
  }
  if (flag("shed") && status->string != "RESOURCE_EXHAUSTED") {
    return complain("shed but status is not RESOURCE_EXHAUSTED");
  }
  if (flag("shed") && retry->number < 1) {
    return complain("shed but retry_after_ms is missing a backoff hint");
  }
  if (flag("expired") && status->string != "DEADLINE_EXCEEDED") {
    return complain("expired in queue but status is not DEADLINE_EXCEEDED");
  }
  if (flag("expired") && flag("shed")) {
    return complain("expired and shed are mutually exclusive outcomes");
  }

  // Stage micros are disjoint sub-intervals of [submit_us, done_us], so
  // they must sum to no more than the end-to-end latency.
  static const char* const kStageKeys[] = {
      "admission_us", "snapshot_us", "cache_us", "score_us", "serialize_us"};
  double stage_sum = 0.0;
  for (const char* key : kStageKeys) {
    const layergcn::obs::JsonValue* v = value.Find(key);
    if (!v->is_number() || v->number < 0) {
      return complain(std::string(key) + " must be a non-negative number");
    }
    stage_sum += v->number;
  }
  const layergcn::obs::JsonValue* latency = value.Find("latency_us");
  if (!latency->is_number() || latency->number < 0) {
    return complain("latency_us must be a non-negative number");
  }
  if (stage_sum > latency->number) {
    return complain("stage micros sum " + std::to_string(stage_sum) +
                    " exceeds latency_us " + std::to_string(latency->number));
  }
  return true;
}

bool ValidateJsonl(const std::string& path, std::ifstream* in) {
  std::string line;
  int64_t line_no = 0;
  int64_t records = 0;
  std::set<uint64_t> seen_access_ids;
  while (std::getline(*in, line)) {
    ++line_no;
    if (line.empty()) continue;
    layergcn::obs::JsonValue value;
    std::string error;
    if (!layergcn::obs::ParseJson(line, &value, &error)) {
      std::fprintf(stderr, "%s:%lld: %s\n", path.c_str(),
                   static_cast<long long>(line_no), error.c_str());
      return false;
    }
    if (value.type != layergcn::obs::JsonValue::Type::kObject) {
      std::fprintf(stderr, "%s:%lld: line is not a JSON object\n",
                   path.c_str(), static_cast<long long>(line_no));
      return false;
    }
    const layergcn::obs::JsonValue* type = value.Find("type");
    if (type != nullptr && type->is_string() && type->string == "epoch" &&
        !ValidateEpochRecord(value, path, line_no)) {
      return false;
    }
    if (type != nullptr && type->is_string() && type->string == "access" &&
        !ValidateAccessRecord(value, path, line_no, &seen_access_ids)) {
      return false;
    }
    ++records;
  }
  if (records == 0) {
    std::fprintf(stderr, "%s: no JSONL records\n", path.c_str());
    return false;
  }
  std::printf("OK %s (%lld records)\n", path.c_str(),
              static_cast<long long>(records));
  return true;
}

bool ValidateJson(const std::string& path, std::ifstream* in) {
  std::ostringstream buf;
  buf << in->rdbuf();
  const std::string text = buf.str();
  layergcn::obs::JsonValue value;
  std::string error;
  if (!layergcn::obs::ParseJson(text, &value, &error)) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), error.c_str());
    return false;
  }
  std::printf("OK %s (%zu bytes)\n", path.c_str(), text.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s FILE...\n", argv[0]);
    return 1;
  }
  bool all_ok = true;
  for (int i = 1; i < argc; ++i) {
    const std::string path = argv[i];
    std::ifstream in(path);
    if (!in.good()) {
      std::fprintf(stderr, "%s: cannot open\n", path.c_str());
      all_ok = false;
      continue;
    }
    const bool ok = HasSuffix(path, ".jsonl") ? ValidateJsonl(path, &in)
                                              : ValidateJson(path, &in);
    all_ok = all_ok && ok;
  }
  return all_ok ? 0 : 1;
}
