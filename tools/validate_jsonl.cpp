// validate_jsonl — strict JSON checker for the observability sinks.
//
// Usage: validate_jsonl FILE...
//
// Files ending in .jsonl are validated line by line (every non-empty line
// must be a complete JSON object); anything else must be one valid JSON
// document. Telemetry records ("type":"epoch") are additionally checked
// against the EpochTelemetry schema: required keys present, no unknown
// keys. Used by tools/check.sh to gate the CLI's --trace-out,
// --metrics-out, and --telemetry-out outputs. Exits non-zero if any file
// is missing, empty, or malformed.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "obs/json.h"

namespace {

bool HasSuffix(const std::string& s, const char* suffix) {
  const size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

// Must track obs::EpochTelemetryJson: every key it always writes, plus the
// eval block on evaluated epochs.
const std::set<std::string>& EpochRequiredKeys() {
  static const std::set<std::string> keys = {
      "type",           "epoch",          "loss",
      "batch_count",    "batch_loss_min", "batch_loss_max",
      "batch_loss_mean", "grad_norm",     "embedding_norm",
      "adam_lr",        "adam_steps",     "neg_sampled",
      "neg_rejected",   "checkpoint_writes", "checkpoint_fallbacks",
      "watchdog_rollbacks", "epoch_seconds", "graph_seconds",
      "sampler_seconds", "forward_seconds", "backward_seconds",
      "adam_seconds"};
  return keys;
}

const std::set<std::string>& EpochOptionalKeys() {
  static const std::set<std::string> keys = {"eval_k", "eval_recall",
                                             "eval_ndcg", "eval_seconds"};
  return keys;
}

// Schema check for one "type":"epoch" telemetry record.
bool ValidateEpochRecord(const layergcn::obs::JsonValue& value,
                         const std::string& path, int64_t line_no) {
  for (const std::string& key : EpochRequiredKeys()) {
    if (value.Find(key) == nullptr) {
      std::fprintf(stderr, "%s:%lld: epoch record missing key \"%s\"\n",
                   path.c_str(), static_cast<long long>(line_no),
                   key.c_str());
      return false;
    }
  }
  for (const auto& [key, member] : value.object) {
    (void)member;
    if (EpochRequiredKeys().count(key) == 0 &&
        EpochOptionalKeys().count(key) == 0) {
      std::fprintf(stderr, "%s:%lld: epoch record has unknown key \"%s\"\n",
                   path.c_str(), static_cast<long long>(line_no),
                   key.c_str());
      return false;
    }
  }
  return true;
}

bool ValidateJsonl(const std::string& path, std::ifstream* in) {
  std::string line;
  int64_t line_no = 0;
  int64_t records = 0;
  while (std::getline(*in, line)) {
    ++line_no;
    if (line.empty()) continue;
    layergcn::obs::JsonValue value;
    std::string error;
    if (!layergcn::obs::ParseJson(line, &value, &error)) {
      std::fprintf(stderr, "%s:%lld: %s\n", path.c_str(),
                   static_cast<long long>(line_no), error.c_str());
      return false;
    }
    if (value.type != layergcn::obs::JsonValue::Type::kObject) {
      std::fprintf(stderr, "%s:%lld: line is not a JSON object\n",
                   path.c_str(), static_cast<long long>(line_no));
      return false;
    }
    const layergcn::obs::JsonValue* type = value.Find("type");
    if (type != nullptr && type->is_string() && type->string == "epoch" &&
        !ValidateEpochRecord(value, path, line_no)) {
      return false;
    }
    ++records;
  }
  if (records == 0) {
    std::fprintf(stderr, "%s: no JSONL records\n", path.c_str());
    return false;
  }
  std::printf("OK %s (%lld records)\n", path.c_str(),
              static_cast<long long>(records));
  return true;
}

bool ValidateJson(const std::string& path, std::ifstream* in) {
  std::ostringstream buf;
  buf << in->rdbuf();
  const std::string text = buf.str();
  layergcn::obs::JsonValue value;
  std::string error;
  if (!layergcn::obs::ParseJson(text, &value, &error)) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), error.c_str());
    return false;
  }
  std::printf("OK %s (%zu bytes)\n", path.c_str(), text.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s FILE...\n", argv[0]);
    return 1;
  }
  bool all_ok = true;
  for (int i = 1; i < argc; ++i) {
    const std::string path = argv[i];
    std::ifstream in(path);
    if (!in.good()) {
      std::fprintf(stderr, "%s: cannot open\n", path.c_str());
      all_ok = false;
      continue;
    }
    const bool ok = HasSuffix(path, ".jsonl") ? ValidateJsonl(path, &in)
                                              : ValidateJson(path, &in);
    all_ok = all_ok && ok;
  }
  return all_ok ? 0 : 1;
}
