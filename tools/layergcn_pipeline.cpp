// layergcn_pipeline — long-running ingest → fine-tune → publish → serve
// demo of the continuous pipeline (DESIGN.md §16).
//
// One process plays every role: a deterministic event generator feeds the
// supervisor's WAL, the supervisor fine-tunes and publishes snapshots on
// cadence, and a serving thread issues well-formed Recommend requests the
// whole time — including while the pipeline is being crashed, corrupted
// (LAYERGCN_FAULT), or SIGKILLed by tools/check.sh. Restarting with the
// same --dir resumes exactly where the previous incarnation committed:
// the generator is a pure function of the WAL's committed count, so the
// event sequence — and therefore the merged-state digest — is identical
// to an unfaulted run's.
//
// SIGINT/SIGTERM stop the cycle loop gracefully: the serving thread is
// drained, the summary JSON is still written, and the process exits 0.
//
// Exit codes: 0 = ran (or was gracefully stopped) with every well-formed
// serve request answered; 1 = setup failure; 2 = at least one well-formed
// serve request failed (the chaos-stage tripwire).
//
// The summary JSON (--summary-out, default stdout) carries the counters
// check.sh asserts on: WAL recovery stats, publish/gate/halt counters,
// the serve tally, the merged-state digest, and the final version.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "pipeline/supervisor.h"
#include "serve/health.h"
#include "serve/recommend_service.h"
#include "serve/snapshot.h"
#include "train/stop_token.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/strings.h"

using namespace layergcn;

namespace {

struct Flags {
  std::string dir;           // pipeline root: wal/, ckpt/, manifest.txt
  std::string snapshot_dir;  // default <dir>/snapshots
  int64_t cycles = 8;
  int64_t events_per_cycle = 200;
  int64_t min_train_events = 400;
  int fine_tune_epochs = 2;
  int bootstrap_epochs = 3;
  int dim = 16;
  uint64_t seed = 7;
  int64_t cycle_sleep_ms = 0;
  int64_t serve_period_us = 500;
  int64_t max_snapshot_age_s = 0;  // health staleness alarm; 0 = off
  std::string summary_out;         // summary JSON; empty = stdout
  std::string health_out;          // periodic health JSON
  std::string metrics_out;         // metrics snapshot JSON on exit
  bool quiet = false;
};

void PrintUsage(const char* argv0) {
  std::printf(
      "usage: %s --dir=DIR [flags]\n"
      "  --dir=DIR             pipeline root (wal/, ckpt/, manifest.txt);\n"
      "                        restarting with the same DIR resumes the\n"
      "                        committed event sequence exactly\n"
      "  --snapshot-dir=DIR    serving snapshot directory\n"
      "                        (default DIR/snapshots)\n"
      "  --cycles=N            supervision cycles to run (default 8)\n"
      "  --events-per-cycle=N  events ingested per cycle (default 200)\n"
      "  --min-train-events=N  fine-tune once this many new events are\n"
      "                        pending (default 400)\n"
      "  --fine-tune-epochs=N  epoch budget per warm-started run (default 2)\n"
      "  --bootstrap-epochs=N  epoch budget for the cold first run "
      "(default 3)\n"
      "  --dim=N               embedding dimension (default 16)\n"
      "  --seed=N              event-generator seed (default 7)\n"
      "  --cycle-sleep-ms=N    pause between cycles (default 0)\n"
      "  --serve-period-us=N   pacing of the serving thread (default 500)\n"
      "  --max-snapshot-age=S  degrade health when the served snapshot is\n"
      "                        older than S seconds (0 = off)\n"
      "  --summary-out=PATH    summary JSON (default stdout)\n"
      "  --health-out=PATH     periodic health/readiness JSON\n"
      "  --metrics-out=PATH    metrics snapshot JSON on exit\n"
      "  --quiet               suppress progress lines\n",
      argv0);
}

bool ParseFlags(int argc, char** argv, Flags* flags) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const size_t eq = arg.find('=');
    const std::string key = arg.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? "" : arg.substr(eq + 1);
    auto as_int = [&](auto* out) {
      int64_t v;
      if (!util::ParseInt64(value, &v)) return false;
      *out = static_cast<std::remove_pointer_t<decltype(out)>>(v);
      return true;
    };
    bool ok = true;
    if (key == "--help" || key == "-h") {
      PrintUsage(argv[0]);
      std::exit(0);
    } else if (key == "--dir") {
      flags->dir = value;
    } else if (key == "--snapshot-dir") {
      flags->snapshot_dir = value;
    } else if (key == "--cycles") {
      ok = as_int(&flags->cycles) && flags->cycles >= 1;
    } else if (key == "--events-per-cycle") {
      ok = as_int(&flags->events_per_cycle) && flags->events_per_cycle >= 1;
    } else if (key == "--min-train-events") {
      ok = as_int(&flags->min_train_events) && flags->min_train_events >= 1;
    } else if (key == "--fine-tune-epochs") {
      ok = as_int(&flags->fine_tune_epochs) && flags->fine_tune_epochs >= 1;
    } else if (key == "--bootstrap-epochs") {
      ok = as_int(&flags->bootstrap_epochs) && flags->bootstrap_epochs >= 1;
    } else if (key == "--dim") {
      ok = as_int(&flags->dim) && flags->dim >= 1;
    } else if (key == "--seed") {
      ok = as_int(&flags->seed);
    } else if (key == "--cycle-sleep-ms") {
      ok = as_int(&flags->cycle_sleep_ms) && flags->cycle_sleep_ms >= 0;
    } else if (key == "--serve-period-us") {
      ok = as_int(&flags->serve_period_us) && flags->serve_period_us >= 0;
    } else if (key == "--max-snapshot-age") {
      ok = as_int(&flags->max_snapshot_age_s) &&
           flags->max_snapshot_age_s >= 0;
    } else if (key == "--summary-out") {
      flags->summary_out = value;
    } else if (key == "--health-out") {
      flags->health_out = value;
    } else if (key == "--metrics-out") {
      flags->metrics_out = value;
    } else if (key == "--quiet") {
      flags->quiet = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", key.c_str());
      return false;
    }
    if (!ok) {
      std::fprintf(stderr, "bad value for %s: '%s'\n", key.c_str(),
                   value.c_str());
      return false;
    }
  }
  if (flags->dir.empty()) {
    std::fprintf(stderr, "--dir is required\n");
    return false;
  }
  if (flags->snapshot_dir.empty()) {
    flags->snapshot_dir = flags->dir + "/snapshots";
  }
  return true;
}

uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// The i-th event of the stream, a pure function of (seed, i): after a
// crash the restarted generator continues from the WAL's committed count
// and reproduces exactly the events the dead incarnation would have
// written. Id spaces widen slowly with i so warm starts must grow rows.
pipeline::WalRecord EventAt(uint64_t seed, int64_t i) {
  const uint64_t h = Mix64(seed ^ static_cast<uint64_t>(i));
  const auto ucap = static_cast<uint64_t>(24 + i / 16);
  const auto icap = static_cast<uint64_t>(32 + i / 10);
  pipeline::WalRecord rec;
  rec.user = static_cast<int32_t>(h % ucap);
  rec.item = static_cast<int32_t>((h >> 32) % icap);
  rec.timestamp = i;
  return rec;
}

// Serving-side tally, updated by the serving thread only.
struct ServeTally {
  std::atomic<int64_t> requests{0};
  std::atomic<int64_t> ok{0};
  std::atomic<int64_t> degraded{0};
  std::atomic<int64_t> partial{0};
  std::atomic<int64_t> failed{0};
};

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (!ParseFlags(argc, argv, &flags)) {
    PrintUsage(argv[0]);
    return 1;
  }
  train::ClearStopRequest();
  train::InstallStopSignalHandlers();
  obs::SetEnabled(true);

  std::error_code ec;
  std::filesystem::create_directories(flags.dir, ec);
  std::filesystem::create_directories(flags.snapshot_dir, ec);
  if (ec) {
    std::fprintf(stderr, "cannot create %s: %s\n",
                 flags.snapshot_dir.c_str(), ec.message().c_str());
    return 1;
  }

  // Serving tier: the store hot-swaps under the publisher's Reload()s
  // while the serving thread reads it; before the first publish the
  // thread just waits for a snapshot to appear.
  serve::SnapshotStore store(flags.snapshot_dir);
  (void)store.Reload();  // cold start is fine; current() stays null
  serve::RecommendServiceOptions service_options;
  serve::RecommendService service(&store, service_options);

  serve::HealthReporter::Options health_options;
  health_options.status_path = flags.health_out;
  health_options.max_snapshot_age_us =
      static_cast<uint64_t>(flags.max_snapshot_age_s) * 1'000'000;
  serve::HealthReporter health(&store, &service, health_options);
  if (!flags.health_out.empty()) health.Start();

  pipeline::SupervisorOptions sup_options;
  sup_options.root_dir = flags.dir;
  sup_options.snapshot_dir = flags.snapshot_dir;
  sup_options.min_train_events = flags.min_train_events;
  sup_options.train_config.embedding_dim = flags.dim;
  sup_options.train_config.num_layers = 2;
  sup_options.train_config.batch_size = 512;
  sup_options.train_config.seed = flags.seed;
  sup_options.warm.fine_tune_epochs = flags.fine_tune_epochs;
  sup_options.warm.bootstrap_epochs = flags.bootstrap_epochs;
  sup_options.warm.quality_k = 10;
  sup_options.warm.verbose = !flags.quiet;
  sup_options.publish.backoff_base_us = 5'000;
  sup_options.publish.backoff_max_us = 200'000;

  pipeline::PipelineSupervisor supervisor(sup_options, &store);
  if (const util::Status started = supervisor.Start(); !started.ok()) {
    std::fprintf(stderr, "pipeline start failed: %s\n",
                 started.ToString().c_str());
    return 1;
  }
  if (!flags.quiet) {
    std::fprintf(stderr,
                 "pipeline up: %lld committed events recovered, run %lld, "
                 "version %lld\n",
                 static_cast<long long>(supervisor.events_committed()),
                 static_cast<long long>(supervisor.manifest().run_id),
                 static_cast<long long>(supervisor.manifest().version));
  }

  // The serving thread never stops answering while the pipeline crashes
  // and recovers around it. Every request it issues is well-formed (a
  // valid user of the currently served snapshot), so any non-OK response
  // is a real serving failure — the chaos stage's tripwire.
  ServeTally tally;
  std::atomic<bool> stop_serving{false};
  std::thread server([&] {
    util::Rng rng(flags.seed ^ 0x5eedf00dull);
    while (!stop_serving.load(std::memory_order_relaxed)) {
      const std::shared_ptr<const serve::ModelSnapshot> snap =
          store.current();
      if (snap == nullptr || snap->num_users() <= 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        continue;
      }
      serve::RecommendRequest req;
      req.user_id = static_cast<int32_t>(
          rng.NextBounded(static_cast<uint64_t>(snap->num_users())));
      req.k = 10;
      const util::StatusOr<serve::RecommendResponse> r =
          service.Recommend(req);
      tally.requests.fetch_add(1, std::memory_order_relaxed);
      if (r.ok()) {
        tally.ok.fetch_add(1, std::memory_order_relaxed);
        if (r.value().degraded) {
          tally.degraded.fetch_add(1, std::memory_order_relaxed);
        }
        if (r.value().partial) {
          tally.partial.fetch_add(1, std::memory_order_relaxed);
        }
      } else {
        tally.failed.fetch_add(1, std::memory_order_relaxed);
        std::fprintf(stderr, "serve failure for user %d: %s\n", req.user_id,
                     r.status().ToString().c_str());
      }
      if (flags.serve_period_us > 0) {
        std::this_thread::sleep_for(
            std::chrono::microseconds(flags.serve_period_us));
      }
    }
  });

  // Cycle loop: generate → ingest (durable) → maybe fine-tune/publish.
  bool interrupted = false;
  util::Status pipeline_error;
  for (int64_t cycle = 0; cycle < flags.cycles; ++cycle) {
    if (train::StopRequested()) {
      interrupted = true;
      break;
    }
    const int64_t base = supervisor.events_committed();
    std::vector<pipeline::WalRecord> events;
    events.reserve(static_cast<size_t>(flags.events_per_cycle));
    for (int64_t j = 0; j < flags.events_per_cycle; ++j) {
      events.push_back(EventAt(flags.seed, base + j));
    }
    if (const util::Status st = supervisor.Ingest(events); !st.ok()) {
      std::fprintf(stderr, "ingest failed: %s\n", st.ToString().c_str());
      pipeline_error = st;
      break;
    }
    if (const util::Status st = supervisor.RunCycle(); !st.ok()) {
      // Stage failures are retried on later cycles by design; only a
      // halted supervisor ends the loop (serving continues regardless).
      std::fprintf(stderr, "cycle %lld: %s\n", static_cast<long long>(cycle),
                   st.ToString().c_str());
      if (supervisor.halted()) {
        pipeline_error = st;
        break;
      }
    }
    if (!flags.quiet) {
      std::fprintf(stderr,
                   "cycle %lld: %lld committed, %lld pending, run %lld, "
                   "version %lld, %lld served\n",
                   static_cast<long long>(cycle),
                   static_cast<long long>(supervisor.events_committed()),
                   static_cast<long long>(supervisor.events_pending_train()),
                   static_cast<long long>(supervisor.manifest().run_id),
                   static_cast<long long>(supervisor.manifest().version),
                   static_cast<long long>(
                       tally.requests.load(std::memory_order_relaxed)));
    }
    if (flags.cycle_sleep_ms > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(flags.cycle_sleep_ms));
    }
  }
  if (train::StopRequested()) interrupted = true;

  stop_serving.store(true, std::memory_order_relaxed);
  server.join();
  health.Stop();

  const pipeline::PipelineSupervisor::Counters& c = supervisor.counters();
  const pipeline::WalRecoveryStats& wal = supervisor.wal_recovery();
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("interrupted").Bool(interrupted);
  w.Key("halted").Bool(supervisor.halted());
  w.Key("events_committed").Int(supervisor.events_committed());
  w.Key("digest").Uint(supervisor.ingestor().Digest());
  w.Key("wal").BeginObject();
  w.Key("recovered_records").Int(wal.records);
  w.Key("corrupt_records").Int(wal.corrupt_records);
  w.Key("torn_tails").Int(wal.torn_tails);
  w.Key("reopens").Int(c.wal_reopens);
  w.EndObject();
  w.Key("pipeline").BeginObject();
  w.Key("runs_completed").Int(c.runs_completed);
  w.Key("gate_refusals").Int(c.gate_refusals);
  w.Key("train_failures").Int(c.train_failures);
  w.Key("publishes").Int(c.publishes);
  w.Key("publish_failures").Int(c.publish_failures);
  w.Key("deadline_overruns").Int(c.deadline_overruns);
  w.Key("final_version").Int(supervisor.manifest().version);
  w.Key("num_users").Int(supervisor.ingestor().num_users());
  w.Key("num_items").Int(supervisor.ingestor().num_items());
  w.EndObject();
  w.Key("serve").BeginObject();
  w.Key("requests").Int(tally.requests.load());
  w.Key("ok").Int(tally.ok.load());
  w.Key("degraded").Int(tally.degraded.load());
  w.Key("partial").Int(tally.partial.load());
  w.Key("failed").Int(tally.failed.load());
  w.EndObject();
  w.EndObject();

  if (flags.summary_out.empty()) {
    std::printf("%s\n", w.str().c_str());
  } else {
    std::ofstream out(flags.summary_out, std::ios::trunc);
    out << w.str() << '\n';
    if (!out.good()) {
      std::fprintf(stderr, "cannot write %s\n", flags.summary_out.c_str());
      return 1;
    }
  }
  if (!flags.metrics_out.empty() &&
      !obs::MetricsRegistry::Global().WriteSnapshotJson(flags.metrics_out)) {
    std::fprintf(stderr, "cannot write %s\n", flags.metrics_out.c_str());
    return 1;
  }

  if (!flags.quiet) {
    std::fprintf(stderr,
                 "%s: %lld events committed, %lld publishes "
                 "(%lld gate refusals), served %lld/%lld ok\n",
                 interrupted        ? "gracefully stopped"
                 : supervisor.halted() ? "halted"
                                       : "done",
                 static_cast<long long>(supervisor.events_committed()),
                 static_cast<long long>(c.publishes),
                 static_cast<long long>(c.gate_refusals),
                 static_cast<long long>(tally.ok.load()),
                 static_cast<long long>(tally.requests.load()));
  }
  // Serving failures are the only fatal outcome: a crashed / halted /
  // interrupted pipeline that kept answering is the designed degradation.
  return tally.failed.load() > 0 ? 2 : 0;
}
