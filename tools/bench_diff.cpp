// bench_diff — compare two BENCH_*.json files and flag regressions.
//
// Usage: bench_diff BASE.json NEW.json [--threshold=0.10]
//                   [--allow-env-mismatch]
//
// Walks both documents and pairs up every numeric leaf by its dotted path
// ("passes.cold.p99_us", "quant.int8.scores_per_sec", ...). Array elements
// are labeled by their "pass" / "encoding" / "name" member when present so
// reordering passes does not misalign the comparison. Each paired metric
// is classified by its key:
//
//   lower-better    keys ending in _us / _seconds / _fraction, or
//                   containing "overhead" — latencies, durations, costs
//   higher-better   keys containing per_sec / speedup / throughput /
//                   recall / ndcg / hit_rate / overlap — rates & quality
//   ignored         anything else (configuration echoes like topk,
//                   num_users, counts) — compared documents may disagree
//                   on them freely
//
// A metric regresses when it moves in the bad direction by more than
// --threshold (relative, default 0.10 = 10%). Metrics whose base value is
// zero are skipped (no meaningful relative delta).
//
// Cross-hardware comparisons are refused: the "env" stamps written by
// bench/bench_env.h (hardware_concurrency, compute_pool_threads, compiler,
// build, obs_enabled, sanitizer) and the "bench" name must match, else
// exit 3 — a p99 measured on a different machine or build flavor is not a
// regression signal. --allow-env-mismatch downgrades that to a warning.
//
// Exit codes: 0 = comparable and within threshold, 2 = at least one
// regression, 3 = documents not comparable (env/bench mismatch),
// 1 = usage or I/O error. check.sh uses the self-compare (exit 0) and an
// injected-regression fixture (exit 2) as smoke tests.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"

namespace {

using layergcn::obs::JsonValue;

struct Flags {
  std::string base_path;
  std::string new_path;
  double threshold = 0.10;
  bool allow_env_mismatch = false;
};

void PrintUsage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s BASE.json NEW.json [--threshold=F] "
               "[--allow-env-mismatch]\n",
               argv0);
}

bool ParseFlags(int argc, char** argv, Flags* flags) {
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--allow-env-mismatch") {
      flags->allow_env_mismatch = true;
    } else if (arg.rfind("--threshold=", 0) == 0) {
      const std::string value = arg.substr(std::strlen("--threshold="));
      char* end = nullptr;
      flags->threshold = std::strtod(value.c_str(), &end);
      if (end == nullptr || *end != '\0' || !(flags->threshold > 0.0)) {
        std::fprintf(stderr, "bad --threshold value: '%s'\n", value.c_str());
        return false;
      }
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() != 2) return false;
  flags->base_path = positional[0];
  flags->new_path = positional[1];
  return true;
}

bool LoadJson(const std::string& path, JsonValue* out) {
  std::ifstream in(path);
  if (!in.good()) {
    std::fprintf(stderr, "%s: cannot open\n", path.c_str());
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string error;
  if (!layergcn::obs::ParseJson(buf.str(), out, &error)) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), error.c_str());
    return false;
  }
  return true;
}

// Stable label for an array element: a distinguishing string member when
// the element is an object carrying one, else the index.
std::string ElementLabel(const JsonValue& element, size_t index) {
  if (element.type == JsonValue::Type::kObject) {
    for (const char* key : {"pass", "encoding", "name", "bench"}) {
      const JsonValue* v = element.Find(key);
      if (v != nullptr && v->is_string()) return v->string;
    }
  }
  return std::to_string(index);
}

// Flattens every numeric leaf under `value` into path -> number. The
// "env" subtree is machine identity, not a metric, and is skipped here
// (it is compared separately, strictly).
void CollectNumericLeaves(const JsonValue& value, const std::string& prefix,
                          std::map<std::string, double>* out) {
  switch (value.type) {
    case JsonValue::Type::kNumber:
      (*out)[prefix] = value.number;
      break;
    case JsonValue::Type::kObject:
      for (const auto& [key, member] : value.object) {
        if (prefix.empty() && key == "env") continue;
        CollectNumericLeaves(member, prefix.empty() ? key : prefix + "." + key,
                             out);
      }
      break;
    case JsonValue::Type::kArray:
      for (size_t i = 0; i < value.array.size(); ++i) {
        CollectNumericLeaves(value.array[i],
                             prefix + "." + ElementLabel(value.array[i], i),
                             out);
      }
      break;
    default:
      break;
  }
}

bool EndsWith(const std::string& s, const char* suffix) {
  const size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

bool Contains(const std::string& s, const char* needle) {
  return s.find(needle) != std::string::npos;
}

enum class Direction { kLowerBetter, kHigherBetter, kIgnored };

Direction Classify(const std::string& path) {
  const size_t dot = path.rfind('.');
  const std::string key = dot == std::string::npos ? path : path.substr(dot + 1);
  if (EndsWith(key, "_us") || EndsWith(key, "_seconds") ||
      EndsWith(key, "_fraction") || Contains(key, "overhead")) {
    return Direction::kLowerBetter;
  }
  if (Contains(key, "per_sec") || Contains(key, "speedup") ||
      Contains(key, "throughput") || Contains(key, "recall") ||
      Contains(key, "ndcg") || Contains(key, "hit_rate") ||
      Contains(key, "overlap")) {
    return Direction::kHigherBetter;
  }
  return Direction::kIgnored;
}

// Renders a scalar env member for the strict comparison (numbers as %g so
// 8 == 8.0; strings/bools verbatim).
std::string EnvMemberString(const JsonValue& v) {
  switch (v.type) {
    case JsonValue::Type::kNumber: {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%g", v.number);
      return buf;
    }
    case JsonValue::Type::kString:
      return v.string;
    case JsonValue::Type::kBool:
      return v.boolean ? "true" : "false";
    default:
      return "<non-scalar>";
  }
}

// True when the env stamps + bench names make the two documents
// comparable; prints every difference found.
bool Comparable(const JsonValue& base, const JsonValue& next) {
  bool ok = true;
  const JsonValue* base_bench = base.Find("bench");
  const JsonValue* next_bench = next.Find("bench");
  const std::string base_name =
      base_bench != nullptr && base_bench->is_string() ? base_bench->string
                                                       : "<missing>";
  const std::string next_name =
      next_bench != nullptr && next_bench->is_string() ? next_bench->string
                                                       : "<missing>";
  if (base_name != next_name) {
    std::fprintf(stderr, "bench name mismatch: \"%s\" vs \"%s\"\n",
                 base_name.c_str(), next_name.c_str());
    ok = false;
  }
  const JsonValue* base_env = base.Find("env");
  const JsonValue* next_env = next.Find("env");
  if (base_env == nullptr || next_env == nullptr ||
      base_env->type != JsonValue::Type::kObject ||
      next_env->type != JsonValue::Type::kObject) {
    std::fprintf(stderr, "missing \"env\" stamp in %s\n",
                 base_env == nullptr ? "base" : "new");
    return false;
  }
  static const char* const kEnvKeys[] = {
      "hardware_concurrency", "compute_pool_threads", "compiler",
      "build",                "obs_enabled",          "sanitizer"};
  for (const char* key : kEnvKeys) {
    const JsonValue* b = base_env->Find(key);
    const JsonValue* n = next_env->Find(key);
    const std::string bs = b != nullptr ? EnvMemberString(*b) : "<missing>";
    const std::string ns = n != nullptr ? EnvMemberString(*n) : "<missing>";
    if (bs != ns) {
      std::fprintf(stderr, "env mismatch on %s: \"%s\" vs \"%s\"\n", key,
                   bs.c_str(), ns.c_str());
      ok = false;
    }
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (!ParseFlags(argc, argv, &flags)) {
    PrintUsage(argv[0]);
    return 1;
  }

  JsonValue base, next;
  if (!LoadJson(flags.base_path, &base) || !LoadJson(flags.new_path, &next)) {
    return 1;
  }

  if (!Comparable(base, next)) {
    if (!flags.allow_env_mismatch) {
      std::fprintf(stderr,
                   "documents are not comparable (different machine, build, "
                   "or bench); pass --allow-env-mismatch to force\n");
      return 3;
    }
    std::fprintf(stderr, "continuing despite mismatch (--allow-env-mismatch)\n");
  }

  std::map<std::string, double> base_leaves, next_leaves;
  CollectNumericLeaves(base, "", &base_leaves);
  CollectNumericLeaves(next, "", &next_leaves);

  int64_t compared = 0, skipped = 0;
  std::vector<std::string> regressions;
  for (const auto& [path, base_value] : base_leaves) {
    const auto it = next_leaves.find(path);
    if (it == next_leaves.end()) continue;
    const Direction dir = Classify(path);
    if (dir == Direction::kIgnored || base_value == 0.0 ||
        !std::isfinite(base_value) || !std::isfinite(it->second)) {
      ++skipped;
      continue;
    }
    ++compared;
    const double rel = (it->second - base_value) / std::fabs(base_value);
    const double bad = dir == Direction::kLowerBetter ? rel : -rel;
    const char* marker = "";
    if (bad > flags.threshold) {
      marker = "  REGRESSION";
      char line[512];
      std::snprintf(line, sizeof(line), "%s: %.6g -> %.6g (%+.1f%%)",
                    path.c_str(), base_value, it->second, rel * 100.0);
      regressions.push_back(line);
    } else if (-bad > flags.threshold) {
      marker = "  improved";
    }
    std::printf("%-56s %14.6g %14.6g %+7.1f%%%s\n", path.c_str(), base_value,
                it->second, rel * 100.0, marker);
  }

  std::printf(
      "compared %lld metrics (%lld skipped), threshold %.1f%%: "
      "%zu regression(s)\n",
      static_cast<long long>(compared), static_cast<long long>(skipped),
      flags.threshold * 100.0, regressions.size());
  for (const std::string& r : regressions) {
    std::printf("REGRESSION %s\n", r.c_str());
  }
  if (compared == 0) {
    std::fprintf(stderr, "no comparable metrics found\n");
    return 1;
  }
  return regressions.empty() ? 0 : 2;
}
