// layergcn_serve — batch-drive the hardened recommendation service from
// JSONL requests (stdin or a file), against a snapshot directory written
// by `layergcn_cli --export-snapshot=DIR`.
//
// One request per line:
//   {"user": 17, "k": 10, "budget_us": 5000, "priority": "batch"}
// "k", "budget_us", and "priority" are optional (defaults --topk /
// --deadline-us / --priority-default).
// One response line per request, in request order:
//   {"user":17,"status":"OK","items":[...],"scores":[...],"partial":false,
//    "degraded":false,"snapshot_version":3,"latency_us":412}
// Failed requests keep the line protocol with a structured status:
//   {"user":-1,"status":"INVALID_ARGUMENT","error":"user_id -1 ..."}
//
// Exit codes: 0 = every request received a response (including structured
// errors — degradation is graceful, not fatal); 1 = setup failure (bad
// flags, no valid snapshot). The process never crashes on a bad request
// or a corrupt snapshot; LAYERGCN_FAULT sweeps rely on that.
//
// Examples:
//   layergcn_serve --snapshot-dir=snaps --random-requests=1000
//       --deadline-us=50000   (one command line)
//   layergcn_serve --snapshot-dir=snaps --requests=reqs.jsonl --burst

#include <cstdio>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <future>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "serve/access_log.h"
#include "serve/health.h"
#include "serve/overload.h"
#include "serve/recommend_service.h"
#include "serve/request_context.h"
#include "serve/snapshot.h"
#include "train/stop_token.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/strings.h"
#include "util/thread_pool.h"

using namespace layergcn;

namespace {

struct Flags {
  std::string snapshot_dir;
  std::string requests_path;  // "-" or empty = stdin
  int64_t random_requests = 0;
  uint64_t deadline_us = 0;  // default request budget; 0 = none
  int32_t topk = 10;
  int32_t max_k = 1000;
  int64_t queue_capacity = 64;
  // Concurrency limit: "" = queue_capacity (legacy static behavior),
  // "auto" = adaptive AIMD limiter, a number = static cap.
  std::string max_inflight;
  bool brownout = false;          // enable the SLO-driven brownout ladder
  std::string priority_default = "interactive";
  bool priority_mix = false;      // --random-requests cycles the classes
  int threads = 0;
  std::string encoding = "f32";       // f32|int8|bf16 scoring encoding
  std::string retrieval = "exact";    // exact|ivf candidate generation
  int32_t cells = 64;                 // IVF index cell count
  int32_t nprobe = 8;                 // cells probed per ivf request
  int64_t recall_sample = 0;          // exact recall check every N ivf reqs
  int64_t score_cache = 1024;         // LRU score cache capacity; 0 = off
  bool burst = false;  // submit everything before draining (sheds load)
  bool quiet = false;  // suppress per-request response lines
  uint64_t seed = 42;
  std::string metrics_out;
  std::string access_log;  // per-request JSONL access log
  std::string trace_out;   // Chrome trace (enables span recording)
  std::string health_out;  // periodic health/readiness JSON
  std::string prom_out;    // Prometheus text exposition
  int64_t max_snapshot_age_s = 0;  // staleness alarm; 0 = off
  // SLO objective overrides (<0 / 0 = keep defaults; LAYERGCN_SLO_* env
  // vars are applied on top by the service and win).
  double slo_availability = -1.0;
  int64_t slo_latency_target_us = 0;
  double slo_latency_objective = -1.0;
};

void PrintUsage(const char* argv0) {
  std::printf(
      "usage: %s --snapshot-dir=DIR [flags]\n"
      "  --snapshot-dir=DIR   directory of snap-NNNNNN.lgcn files (required)\n"
      "request source (one of):\n"
      "  --requests=PATH      JSONL requests; '-' = stdin (default)\n"
      "  --random-requests=N  generate N uniform-random requests instead\n"
      "request defaults:\n"
      "  --topk=N             k for requests that omit it (default 10)\n"
      "  --deadline-us=N      budget_us for requests that omit it (0 = none)\n"
      "service tuning:\n"
      "  --max-k=N            largest admissible k (default 1000)\n"
      "  --queue-capacity=N   async admission bound (default 64)\n"
      "  --max-inflight=auto|N  concurrent scoring limit: a number pins a\n"
      "                       static cap, 'auto' enables the adaptive AIMD\n"
      "                       limiter (default: queue capacity)\n"
      "  --brownout           enable the SLO-driven brownout ladder\n"
      "                       (exact -> ivf -> quantized -> cache-only)\n"
      "  --priority-default=interactive|batch|background\n"
      "                       class for requests that omit \"priority\"\n"
      "  --priority-mix       --random-requests only: cycle the generated\n"
      "                       requests through all three classes\n"
      "  --threads=N          compute threads (0 = default pool)\n"
      "  --encoding=f32|int8|bf16  embedding encoding scored against\n"
      "                       (default f32; falls back to f32 per request\n"
      "                       when the snapshot lacks the quantized copy)\n"
      "  --retrieval=exact|ivf  candidate generation: exact full scan\n"
      "                       (default) or IVF two-stage retrieval (build\n"
      "                       a k-means item index at load, probe top\n"
      "                       cells, re-rank candidates exactly)\n"
      "  --cells=N            IVF index cell count (default 64)\n"
      "  --nprobe=N           cells probed per ivf request (default 8)\n"
      "  --recall-sample=N    re-rank every Nth ivf request exactly and\n"
      "                       publish the top-K overlap gauge (0 = off)\n"
      "  --score-cache=N      LRU score cache capacity in users\n"
      "                       (default 1024; 0 disables)\n"
      "  --burst              submit all requests before draining any —\n"
      "                       overruns the admission queue on purpose\n"
      "  --quiet              print only the summary, not response lines\n"
      "  --seed=N             RNG seed for --random-requests (default 42)\n"
      "observability:\n"
      "  --metrics-out=PATH   write a metrics snapshot JSON on exit\n"
      "  --access-log=PATH    JSONL access log, one record per request\n"
      "  --trace-out=PATH     Chrome trace of request-keyed spans\n"
      "  --health-out=PATH    health/readiness JSON, refreshed every second\n"
      "  --prom-out=PATH      Prometheus text exposition of all metrics\n"
      "  --max-snapshot-age=S degrade health when the served snapshot is\n"
      "                       older than S seconds (0 = off)\n"
      "  --slo-availability=F        availability objective (e.g. 0.999)\n"
      "  --slo-latency-target-us=N   latency SLO target in microseconds\n"
      "  --slo-latency-objective=F   fraction that must beat the target\n"
      "  (LAYERGCN_SLO_* environment variables override the --slo-* flags)\n",
      argv0);
}

bool ParseFlags(int argc, char** argv, Flags* flags) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const size_t eq = arg.find('=');
    const std::string key = arg.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? "" : arg.substr(eq + 1);
    auto as_int = [&](auto* out) {
      int64_t v;
      if (!util::ParseInt64(value, &v)) return false;
      *out = static_cast<std::remove_pointer_t<decltype(out)>>(v);
      return true;
    };
    bool ok = true;
    if (key == "--help" || key == "-h") {
      PrintUsage(argv[0]);
      std::exit(0);
    } else if (key == "--snapshot-dir") {
      flags->snapshot_dir = value;
    } else if (key == "--requests") {
      flags->requests_path = value;
    } else if (key == "--random-requests") {
      ok = as_int(&flags->random_requests) && flags->random_requests >= 1;
    } else if (key == "--deadline-us") {
      ok = as_int(&flags->deadline_us);
    } else if (key == "--topk") {
      ok = as_int(&flags->topk) && flags->topk >= 1;
    } else if (key == "--max-k") {
      ok = as_int(&flags->max_k) && flags->max_k >= 1;
    } else if (key == "--queue-capacity") {
      ok = as_int(&flags->queue_capacity) && flags->queue_capacity >= 1;
    } else if (key == "--max-inflight") {
      if (value == "auto") {
        flags->max_inflight = value;
      } else {
        int64_t v = 0;
        ok = util::ParseInt64(value, &v) && v >= 1;
        flags->max_inflight = value;
      }
    } else if (key == "--brownout") {
      flags->brownout = true;
    } else if (key == "--priority-default") {
      serve::Priority parsed;
      ok = serve::ParsePriority(value, &parsed);
      flags->priority_default = value;
    } else if (key == "--priority-mix") {
      flags->priority_mix = true;
    } else if (key == "--threads") {
      ok = as_int(&flags->threads) && flags->threads >= 0;
    } else if (key == "--encoding") {
      eval::ScoreEncoding parsed;
      ok = eval::ParseScoreEncoding(value, &parsed);
      flags->encoding = value;
    } else if (key == "--retrieval") {
      serve::RetrievalMode parsed;
      ok = serve::ParseRetrievalMode(value, &parsed);
      flags->retrieval = value;
    } else if (key == "--cells") {
      ok = as_int(&flags->cells) && flags->cells >= 1;
    } else if (key == "--nprobe") {
      ok = as_int(&flags->nprobe) && flags->nprobe >= 1;
    } else if (key == "--recall-sample") {
      ok = as_int(&flags->recall_sample) && flags->recall_sample >= 0;
    } else if (key == "--score-cache") {
      ok = as_int(&flags->score_cache) && flags->score_cache >= 0;
    } else if (key == "--burst") {
      flags->burst = true;
    } else if (key == "--quiet") {
      flags->quiet = true;
    } else if (key == "--seed") {
      ok = as_int(&flags->seed);
    } else if (key == "--metrics-out") {
      flags->metrics_out = value;
    } else if (key == "--access-log") {
      flags->access_log = value;
    } else if (key == "--trace-out") {
      flags->trace_out = value;
    } else if (key == "--health-out") {
      flags->health_out = value;
    } else if (key == "--prom-out") {
      flags->prom_out = value;
    } else if (key == "--max-snapshot-age") {
      ok = as_int(&flags->max_snapshot_age_s) &&
           flags->max_snapshot_age_s >= 0;
    } else if (key == "--slo-availability") {
      ok = util::ParseDouble(value, &flags->slo_availability) &&
           flags->slo_availability > 0.0 && flags->slo_availability < 1.0;
    } else if (key == "--slo-latency-target-us") {
      ok = as_int(&flags->slo_latency_target_us) &&
           flags->slo_latency_target_us >= 1;
    } else if (key == "--slo-latency-objective") {
      ok = util::ParseDouble(value, &flags->slo_latency_objective) &&
           flags->slo_latency_objective > 0.0 &&
           flags->slo_latency_objective < 1.0;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", key.c_str());
      return false;
    }
    if (!ok) {
      std::fprintf(stderr, "bad value for %s: '%s'\n", key.c_str(),
                   value.c_str());
      return false;
    }
  }
  if (flags->snapshot_dir.empty()) {
    std::fprintf(stderr, "--snapshot-dir is required\n");
    return false;
  }
  if (flags->random_requests > 0 && !flags->requests_path.empty()) {
    std::fprintf(stderr,
                 "--requests and --random-requests are exclusive\n");
    return false;
  }
  return true;
}

// A request line parsed (or rejected) before it reaches the service. Parse
// failures still produce a response line, so the JSONL protocol stays
// one-in/one-out even for garbage input.
struct PendingRequest {
  serve::RecommendRequest req;
  bool parse_ok = true;
  std::string parse_error;
};

PendingRequest ParseRequestLine(const std::string& line, const Flags& flags) {
  PendingRequest pending;
  pending.req.k = flags.topk;
  pending.req.budget_us = flags.deadline_us;
  serve::ParsePriority(flags.priority_default, &pending.req.priority);
  obs::JsonValue value;
  std::string error;
  if (!obs::ParseJson(line, &value, &error)) {
    pending.parse_ok = false;
    pending.parse_error = "bad JSON: " + error;
    return pending;
  }
  if (value.type != obs::JsonValue::Type::kObject) {
    pending.parse_ok = false;
    pending.parse_error = "request must be a JSON object";
    return pending;
  }
  const obs::JsonValue* user = value.Find("user");
  if (user == nullptr || !user->is_number()) {
    pending.parse_ok = false;
    pending.parse_error = "missing numeric \"user\"";
    return pending;
  }
  pending.req.user_id = static_cast<int32_t>(user->number);
  if (const obs::JsonValue* k = value.Find("k"); k != nullptr) {
    if (!k->is_number()) {
      pending.parse_ok = false;
      pending.parse_error = "\"k\" must be a number";
      return pending;
    }
    pending.req.k = static_cast<int32_t>(k->number);
  }
  if (const obs::JsonValue* b = value.Find("budget_us"); b != nullptr) {
    if (!b->is_number() || b->number < 0) {
      pending.parse_ok = false;
      pending.parse_error = "\"budget_us\" must be a non-negative number";
      return pending;
    }
    pending.req.budget_us = static_cast<uint64_t>(b->number);
  }
  if (const obs::JsonValue* e = value.Find("exact"); e != nullptr) {
    if (e->type != obs::JsonValue::Type::kBool) {
      pending.parse_ok = false;
      pending.parse_error = "\"exact\" must be a boolean";
      return pending;
    }
    pending.req.exact = e->boolean;
  }
  if (const obs::JsonValue* p = value.Find("priority"); p != nullptr) {
    if (!p->is_string() ||
        !serve::ParsePriority(p->string, &pending.req.priority)) {
      pending.parse_ok = false;
      pending.parse_error =
          "\"priority\" must be interactive|batch|background";
      return pending;
    }
  }
  return pending;
}

std::string ResponseLine(const serve::RecommendRequest& req,
                         const util::StatusOr<serve::RecommendResponse>& r,
                         const serve::RequestContext& ctx) {
  obs::JsonWriter w;
  w.BeginObject().Key("user").Int(req.user_id);
  w.Key("priority").String(serve::PriorityName(req.priority));
  if (!r.ok()) {
    w.Key("status").String(util::StatusCodeName(r.status().code()));
    w.Key("error").String(r.status().message());
    if (ctx.shed) w.Key("retry_after_ms").Uint(ctx.retry_after_ms);
    if (ctx.expired) w.Key("expired").Bool(true);
    w.EndObject();
    return w.str();
  }
  const serve::RecommendResponse& resp = r.value();
  w.Key("status").String("OK");
  w.Key("items").BeginArray();
  for (const serve::ScoredItem& it : resp.items) w.Int(it.item);
  w.EndArray();
  w.Key("scores").BeginArray();
  for (const serve::ScoredItem& it : resp.items) w.Number(it.score);
  w.EndArray();
  w.Key("partial").Bool(resp.partial);
  w.Key("degraded").Bool(resp.degraded);
  w.Key("cached").Bool(resp.cached);
  w.Key("encoding").String(eval::ScoreEncodingName(resp.encoding));
  w.Key("retrieval").String(serve::RetrievalModeName(resp.retrieval));
  w.Key("candidates").Int(resp.candidates);
  w.Key("brownout_level").Int(static_cast<int>(resp.brownout));
  w.Key("snapshot_version").Int(resp.snapshot_version);
  w.Key("latency_us").Uint(resp.latency_us);
  w.EndObject();
  return w.str();
}

struct Tally {
  int64_t total = 0, ok = 0, partial = 0, degraded = 0;
  int64_t shed = 0, expired = 0, deadline = 0, invalid = 0, other_error = 0;
  int64_t malformed = 0;  // subset of invalid: lines that never parsed
  // Per-class offered/shed, for the strict-priority summary.
  int64_t offered_by_class[serve::kNumPriorities] = {0, 0, 0};
  int64_t shed_by_class[serve::kNumPriorities] = {0, 0, 0};
};

void Count(const util::StatusOr<serve::RecommendResponse>& r,
           const serve::RequestContext& ctx, Tally* tally) {
  ++tally->total;
  ++tally->offered_by_class[static_cast<int>(ctx.priority)];
  if (r.ok()) {
    ++tally->ok;
    if (r.value().partial) ++tally->partial;
    if (r.value().degraded) ++tally->degraded;
    return;
  }
  if (ctx.shed) ++tally->shed_by_class[static_cast<int>(ctx.priority)];
  if (ctx.expired) ++tally->expired;
  switch (r.status().code()) {
    case util::StatusCode::kResourceExhausted: ++tally->shed; break;
    case util::StatusCode::kDeadlineExceeded:
      if (!ctx.expired) ++tally->deadline;
      break;
    case util::StatusCode::kInvalidArgument: ++tally->invalid; break;
    default: ++tally->other_error; break;
  }
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (!ParseFlags(argc, argv, &flags)) {
    PrintUsage(argv[0]);
    return 1;
  }

  // SIGINT/SIGTERM request a graceful drain: stop submitting, finish the
  // in-flight window, flush the access log and final health/metrics
  // snapshots, exit 0. A second signal kills the process the usual way.
  train::ClearStopRequest();
  train::InstallStopSignalHandlers();

  std::unique_ptr<util::ThreadPool> pool;
  std::unique_ptr<util::parallel::ScopedComputePool> pool_scope;
  if (flags.threads > 0) {
    pool = std::make_unique<util::ThreadPool>(flags.threads);
    pool_scope =
        std::make_unique<util::parallel::ScopedComputePool>(pool.get());
  }
  obs::SetEnabled(true);
  if (!flags.trace_out.empty()) obs::SetTraceEnabled(true);

  serve::AccessLog access_log;
  if (!flags.access_log.empty() && !access_log.Open(flags.access_log)) {
    std::fprintf(stderr, "cannot write %s\n", flags.access_log.c_str());
    return 1;
  }

  serve::SnapshotStore store(flags.snapshot_dir);
  serve::RetrievalMode retrieval = serve::RetrievalMode::kExact;
  serve::ParseRetrievalMode(flags.retrieval, &retrieval);
  if (retrieval == serve::RetrievalMode::kIvf) {
    serve::ItemIndexOptions index_options;
    index_options.cells = flags.cells;
    store.SetIndexOptions(index_options);
  }
  const util::Status loaded = store.Reload();
  if (!loaded.ok()) {
    std::fprintf(stderr, "cannot load a snapshot from %s: %s\n",
                 flags.snapshot_dir.c_str(), loaded.ToString().c_str());
    return 1;
  }
  const std::shared_ptr<const serve::ModelSnapshot> snap = store.current();
  std::fprintf(stderr,
               "serving snapshot v%lld: %lld users, %lld items, dim %lld "
               "(encodings: f32%s%s)\n",
               static_cast<long long>(snap->version()),
               static_cast<long long>(snap->num_users()),
               static_cast<long long>(snap->num_items()),
               static_cast<long long>(snap->dim()),
               snap->has_int8() ? " int8" : "",
               snap->has_bf16() ? " bf16" : "");

  serve::RecommendServiceOptions options;
  options.max_k = flags.max_k;
  options.queue_capacity = flags.queue_capacity;
  if (flags.max_inflight == "auto") {
    options.overload.adaptive = true;
    // The request deadline is the natural congestion threshold: a
    // completion that ran past what callers wait for should squeeze the
    // limit even before requests start failing outright.
    if (flags.deadline_us > 0) {
      options.overload.limiter.latency_target_us = flags.deadline_us;
    }
    options.overload.limiter.max_limit = flags.queue_capacity;
  } else if (!flags.max_inflight.empty()) {
    int64_t fixed = 0;
    util::ParseInt64(flags.max_inflight, &fixed);
    options.overload.fixed_limit = fixed;
  }
  options.overload.brownout.enabled = flags.brownout;
  options.score_cache_capacity = flags.score_cache;
  eval::ParseScoreEncoding(flags.encoding, &options.encoding);
  options.retrieval = retrieval;
  options.nprobe = flags.nprobe;
  options.recall_sample_every = flags.recall_sample;
  if (flags.slo_availability > 0.0) {
    options.stats.slo.availability_objective = flags.slo_availability;
  }
  if (flags.slo_latency_target_us > 0) {
    options.stats.slo.latency_target_us =
        static_cast<uint64_t>(flags.slo_latency_target_us);
  }
  if (flags.slo_latency_objective > 0.0) {
    options.stats.slo.latency_objective = flags.slo_latency_objective;
  }
  std::fprintf(stderr, "scoring encoding: %s, score cache: %lld\n",
               eval::ScoreEncodingName(options.encoding),
               static_cast<long long>(flags.score_cache));
  if (retrieval == serve::RetrievalMode::kIvf) {
    if (snap->has_index()) {
      std::fprintf(
          stderr,
          "retrieval: ivf (%d cells, %d empty, built in %lldus), nprobe %d\n",
          snap->item_index().cells(), snap->item_index().empty_cells(),
          static_cast<long long>(snap->item_index().build_us()),
          flags.nprobe);
    } else {
      std::fprintf(stderr,
                   "retrieval: ivf requested but index build failed; "
                   "serving exact\n");
    }
  }
  serve::RecommendService service(&store, options);

  serve::HealthReporter::Options health_options;
  health_options.status_path = flags.health_out;
  health_options.prom_path = flags.prom_out;
  health_options.max_snapshot_age_us =
      static_cast<uint64_t>(flags.max_snapshot_age_s) * 1'000'000;
  serve::HealthReporter health(&store, &service, health_options);
  if (!flags.health_out.empty() || !flags.prom_out.empty()) health.Start();

  // Build the request stream.
  std::vector<PendingRequest> requests;
  if (flags.random_requests > 0) {
    util::Rng rng(flags.seed);
    requests.reserve(static_cast<size_t>(flags.random_requests));
    serve::Priority default_priority = serve::Priority::kInteractive;
    serve::ParsePriority(flags.priority_default, &default_priority);
    for (int64_t i = 0; i < flags.random_requests; ++i) {
      PendingRequest pending;
      pending.req.user_id = static_cast<int32_t>(
          rng.NextBounded(static_cast<uint64_t>(snap->num_users())));
      pending.req.k = flags.topk;
      pending.req.budget_us = flags.deadline_us;
      pending.req.priority =
          flags.priority_mix
              ? static_cast<serve::Priority>(i % serve::kNumPriorities)
              : default_priority;
      requests.push_back(pending);
    }
  } else {
    std::ifstream file;
    const bool use_stdin =
        flags.requests_path.empty() || flags.requests_path == "-";
    if (!use_stdin) {
      file.open(flags.requests_path);
      if (!file.good()) {
        std::fprintf(stderr, "cannot read %s\n",
                     flags.requests_path.c_str());
        return 1;
      }
    }
    std::istream& in = use_stdin ? std::cin : file;
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      requests.push_back(ParseRequestLine(line, flags));
    }
  }

  // Drive the admission-controlled async path, printing responses in
  // request order. Windowed mode keeps at most queue_capacity requests
  // outstanding; --burst submits everything up front so overload actually
  // sheds. Each request carries a RequestContext (deterministic 1-based
  // id) that the service fills with stage timings; the drain stamps
  // serialize time and done_us, then records the finished context into
  // the stats/SLO monitor and the access log — exactly one access record
  // per request, malformed and shed included.
  Tally tally;
  struct InFlight {
    serve::RecommendRequest req;
    std::future<util::StatusOr<serve::RecommendResponse>> future;
    std::unique_ptr<serve::RequestContext> ctx;
  };
  std::deque<InFlight> window;
  uint64_t next_id = 0;
  auto drain_one = [&] {
    InFlight& front = window.front();
    const util::StatusOr<serve::RecommendResponse> r = front.future.get();
    serve::RequestContext& ctx = *front.ctx;
    Count(r, ctx, &tally);
    {
      obs::TraceRequestScope serialize_scope(ctx.id);
      OBS_SPAN("serve.serialize");
      const uint64_t serialize_t0 = obs::NowMicros();
      const std::string line = ResponseLine(front.req, r, ctx);
      if (!flags.quiet) std::printf("%s\n", line.c_str());
      ctx.done_us = obs::NowMicros();
      ctx.stage(serve::Stage::kSerialize) = ctx.done_us - serialize_t0;
    }
    service.stats().Record(ctx, ctx.done_us);
    access_log.Append(ctx);
    window.pop_front();
  };
  bool interrupted = false;
  for (const PendingRequest& pending : requests) {
    if (train::StopRequested()) {
      interrupted = true;
      break;
    }
    if (!flags.burst) {
      while (static_cast<int64_t>(window.size()) >= flags.queue_capacity) {
        drain_one();
      }
    }
    auto ctx = std::make_unique<serve::RequestContext>();
    ctx->id = ++next_id;
    if (!pending.parse_ok) {
      ++tally.malformed;
      // Pre-resolved future so parse failures stay in request order. The
      // context still gets an access record (malformed=true) but never
      // reaches the service.
      ctx->malformed = true;
      ctx->user = pending.req.user_id;
      ctx->k = pending.req.k;
      ctx->budget_us = pending.req.budget_us;
      ctx->priority = pending.req.priority;
      ctx->code = util::StatusCode::kInvalidArgument;
      ctx->error = pending.parse_error;
      ctx->submit_us = obs::NowMicros();
      ctx->finish_us = ctx->submit_us;
      std::promise<util::StatusOr<serve::RecommendResponse>> failed;
      failed.set_value(util::InvalidArgumentError(pending.parse_error));
      window.push_back(
          InFlight{pending.req, failed.get_future(), std::move(ctx)});
      continue;
    }
    std::future<util::StatusOr<serve::RecommendResponse>> future =
        service.Submit(pending.req, ctx.get());
    window.push_back(InFlight{pending.req, std::move(future), std::move(ctx)});
  }
  while (!window.empty()) drain_one();
  service.stats().UpdateGauges(obs::NowMicros());

  if (interrupted) {
    std::fprintf(stderr,
                 "graceful stop: drained %lld in-flight requests, "
                 "skipped %lld unsubmitted\n",
                 static_cast<long long>(tally.total),
                 static_cast<long long>(
                     static_cast<int64_t>(requests.size()) - tally.total));
  }
  std::fprintf(stderr,
               "served %lld requests: %lld ok (%lld partial, %lld degraded), "
               "%lld shed, %lld expired-in-queue, %lld deadline, "
               "%lld invalid (%lld malformed), %lld other\n",
               static_cast<long long>(tally.total),
               static_cast<long long>(tally.ok),
               static_cast<long long>(tally.partial),
               static_cast<long long>(tally.degraded),
               static_cast<long long>(tally.shed),
               static_cast<long long>(tally.expired),
               static_cast<long long>(tally.deadline),
               static_cast<long long>(tally.invalid),
               static_cast<long long>(tally.malformed),
               static_cast<long long>(tally.other_error));
  if (tally.shed > 0) {
    std::fprintf(
        stderr, "shed by class:%s\n",
        [&tally] {
          std::string out;
          for (int cls = 0; cls < serve::kNumPriorities; ++cls) {
            out += " " + std::string(serve::PriorityName(
                             static_cast<serve::Priority>(cls))) +
                   " " + std::to_string(tally.shed_by_class[cls]) + "/" +
                   std::to_string(tally.offered_by_class[cls]);
          }
          return out;
        }()
            .c_str());
  }

  // Stop() flushes one final health/prom write covering the whole sweep.
  health.Stop();
  if ((!flags.health_out.empty() || !flags.prom_out.empty()) &&
      health.writes() == 0) {
    std::fprintf(stderr, "cannot write %s\n",
                 (!flags.health_out.empty() ? flags.health_out
                                            : flags.prom_out)
                     .c_str());
    return 1;
  }

  if (!access_log.Close() && !flags.access_log.empty()) {
    std::fprintf(stderr, "access log write to %s failed\n",
                 flags.access_log.c_str());
    return 1;
  }

  if (!flags.trace_out.empty()) {
    if (!obs::TraceRecorder::Global().WriteChromeTrace(flags.trace_out)) {
      std::fprintf(stderr, "cannot write %s\n", flags.trace_out.c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote chrome trace to %s\n",
                 flags.trace_out.c_str());
  }

  if (!flags.metrics_out.empty()) {
    if (!obs::MetricsRegistry::Global().WriteSnapshotJson(
            flags.metrics_out)) {
      std::fprintf(stderr, "cannot write %s\n", flags.metrics_out.c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote metrics snapshot to %s\n",
                 flags.metrics_out.c_str());
  }
  return 0;
}
